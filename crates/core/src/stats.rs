//! End-of-run simulation statistics.

use redsim_irb::{AttrCounters, IrbStats, ReuseAttribution, REUSE_CLASS_NAMES};
use redsim_mem::CacheStats;
use redsim_util::Json;

use crate::fault::{FaultLifecycle, FaultStats};

/// Integer ratio `numerator * 1000 / denominator`, zero when the
/// denominator is zero — the byte-stable `permille` convention used
/// alongside every float ratio in `--json` output (see `milli_ipc`).
#[must_use]
fn permille(numerator: u64, denominator: u64) -> u64 {
    (numerator * 1000).checked_div(denominator).unwrap_or(0)
}

/// Why the fetch stage produced no instructions in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchStallKind {
    /// Waiting for a mispredicted branch to resolve plus the redirect
    /// penalty (the wrong-path window).
    BranchRecovery,
    /// Waiting on an instruction-cache miss.
    ICacheMiss,
    /// The fetch queue is full (back-end pressure).
    QueueFull,
    /// A BTB-miss bubble on a taken control instruction.
    BtbBubble,
}

/// Front-end prediction summary (copied out of the front end at the end
/// of a run).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BranchSummary {
    /// Conditional branches fetched.
    pub cond_branches: u64,
    /// Conditional mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect jumps fetched.
    pub indirect_jumps: u64,
    /// Indirect mispredictions.
    pub indirect_mispredicts: u64,
    /// BTB-miss bubbles.
    pub btb_miss_bubbles: u64,
}

impl BranchSummary {
    /// Conditional-branch misprediction rate in `[0, 1]`.
    #[must_use]
    pub fn cond_mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }
}

/// IRB summary: buffer stats plus pipeline-level reuse outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IrbSummary {
    /// The buffer's own counters (lookups, hits, conflicts...).
    pub buffer: IrbStats,
    /// Reuse tests passed (duplicates that skipped the ALUs).
    pub reuse_passed: u64,
    /// Reuse tests failed.
    pub reuse_failed: u64,
    /// Lookups denied a read port.
    pub lookups_port_starved: u64,
    /// Inserts denied a write port.
    pub inserts_port_starved: u64,
}

impl IrbSummary {
    /// Fraction of reuse tests that passed.
    #[must_use]
    pub fn reuse_pass_rate(&self) -> f64 {
        let n = self.reuse_passed + self.reuse_failed;
        if n == 0 {
            0.0
        } else {
            self.reuse_passed as f64 / n as f64
        }
    }

    /// [`IrbSummary::reuse_pass_rate`] as an exact integer per-mille
    /// (byte-stable across hosts, like `milli_ipc`).
    #[must_use]
    pub fn reuse_pass_permille(&self) -> u64 {
        permille(self.reuse_passed, self.reuse_passed + self.reuse_failed)
    }

    /// Buffer hit rate (PC + victim hits over lookups) as an exact
    /// integer per-mille.
    #[must_use]
    pub fn hit_permille(&self) -> u64 {
        permille(
            self.buffer.pc_hits + self.buffer.victim_hits,
            self.buffer.lookups,
        )
    }
}

/// One [`AttrCounters`] tally as a flat JSON object.
fn attr_counters_json(c: &AttrCounters) -> Json {
    Json::obj()
        .field("lookups", c.lookups)
        .field("hits", c.hits)
        .field("passes", c.passes)
        .field("fails", c.fails)
}

/// A [`ReuseAttribution`] as a JSON object — the `"attribution"` field
/// of [`SimStats::to_json`] and of `redsim-serve` result payloads.
///
/// Shape: `classes` keyed by class name, `hot_pcs`/`loops` arrays in
/// the deterministic top-K order, plus the `folded_pcs`/`folded_loops`/
/// `outside` conservation buckets.
#[must_use]
pub fn attribution_to_json(a: &ReuseAttribution) -> Json {
    let mut classes = Json::obj();
    for (i, name) in REUSE_CLASS_NAMES.iter().enumerate() {
        classes = classes.field(name, attr_counters_json(&a.classes[i]));
    }
    let pc_site = |s: &redsim_irb::PcSite| {
        Json::obj()
            .field("pc", s.pc)
            .field("class", REUSE_CLASS_NAMES[s.class as usize])
            .field("lookups", s.counters.lookups)
            .field("hits", s.counters.hits)
            .field("passes", s.counters.passes)
            .field("fails", s.counters.fails)
    };
    let loop_site = |l: &redsim_irb::LoopSite| {
        Json::obj()
            .field("head", l.head)
            .field("lookups", l.counters.lookups)
            .field("hits", l.counters.hits)
            .field("passes", l.counters.passes)
            .field("fails", l.counters.fails)
    };
    Json::obj()
        .field("classes", classes)
        .field("hot_pcs", a.hot_pcs.iter().map(pc_site).collect::<Json>())
        .field("folded_pcs", attr_counters_json(&a.folded_pcs))
        .field("loops", a.loops.iter().map(loop_site).collect::<Json>())
        .field("folded_loops", attr_counters_json(&a.folded_loops))
        .field("outside", attr_counters_json(&a.outside))
}

/// Wall-clock throughput of one or more timing-simulation runs: how
/// fast the *host* chews through simulated work (the perf-trajectory
/// metric recorded in `BENCH_simulator.json`), as opposed to the
/// simulated machine's own IPC.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Throughput {
    /// Host seconds spent inside the timing simulation.
    pub wall_seconds: f64,
    /// Simulated cycles advanced in that time.
    pub sim_cycles: u64,
    /// Architected instructions committed in that time.
    pub committed_insts: u64,
}

impl Throughput {
    /// Accumulates another run into this record.
    pub fn add(&mut self, other: &Throughput) {
        self.wall_seconds += other.wall_seconds;
        self.sim_cycles += other.sim_cycles;
        self.committed_insts += other.committed_insts;
    }

    /// Simulated cycles per host second.
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / self.wall_seconds
        }
    }

    /// Committed instructions per host second.
    #[must_use]
    pub fn insts_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.committed_insts as f64 / self.wall_seconds
        }
    }

    /// The record as a flat JSON object (the `"perf"` field of the
    /// figure binaries' `--json` output).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("wall_seconds", self.wall_seconds)
            .field("sim_cycles", self.sim_cycles)
            .field("committed_insts", self.committed_insts)
            .field("cycles_per_sec", self.cycles_per_sec())
            .field("insts_per_sec", self.insts_per_sec())
    }
}

/// Per-cycle stall attribution. Every simulated cycle in which no
/// instruction retired is charged to *exactly one* cause, keyed off the
/// oldest unretired copy — the instruction whose progress gates commit.
/// Together with productive cycles this partitions the whole run:
///
/// ```text
/// active_commit_cycles + stalls.total() == cycles
/// ```
///
/// (see [`SimStats::stall_conservation_holds`]). The taxonomy follows
/// the paper's Section 3 decomposition of where ALU-bandwidth pressure
/// shows up: front-end supply, data dependences, issue-slot pressure,
/// FU contention, IRB port starvation, execution latency, retirement
/// limits and DIE rewind recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// The window held no copies — the front end supplied nothing
    /// (branch recovery, I-cache misses, BTB bubbles; the
    /// `fetch_stalls_*` counters say which).
    pub frontend_empty: u64,
    /// Oldest unretired copy was waiting on operands (data
    /// dependences, including loads feeding it).
    pub waiting_deps: u64,
    /// Oldest copy was ready but the previous cycle's issue bandwidth
    /// was exhausted before reaching it.
    pub issue_starved: u64,
    /// Oldest copy was ready with issue bandwidth to spare but lost
    /// functional-unit (or D-cache port) arbitration.
    pub fu_contention: u64,
    /// Oldest copy was ready but its IRB lookup had been denied a read
    /// port, so the reuse test could not serve it.
    pub irb_port: u64,
    /// Oldest copy was in flight (functional-unit or memory latency).
    pub execution: u64,
    /// Oldest copy was done but retirement was blocked (commit width,
    /// D-cache store port, or an unfinished pair partner).
    pub commit_blocked: u64,
    /// A DIE pair mismatch rewound the head pair this cycle.
    pub rewind: u64,
}

impl StallBreakdown {
    /// Total attributed stall cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.frontend_empty
            + self.waiting_deps
            + self.issue_starved
            + self.fu_contention
            + self.irb_port
            + self.execution
            + self.commit_blocked
            + self.rewind
    }

    /// Accumulates another breakdown into this one.
    pub fn add(&mut self, other: &StallBreakdown) {
        self.frontend_empty += other.frontend_empty;
        self.waiting_deps += other.waiting_deps;
        self.issue_starved += other.issue_starved;
        self.fu_contention += other.fu_contention;
        self.irb_port += other.irb_port;
        self.execution += other.execution;
        self.commit_blocked += other.commit_blocked;
        self.rewind += other.rewind;
    }

    /// The breakdown as a flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("frontend_empty", self.frontend_empty)
            .field("waiting_deps", self.waiting_deps)
            .field("issue_starved", self.issue_starved)
            .field("fu_contention", self.fu_contention)
            .field("irb_port", self.irb_port)
            .field("execution", self.execution)
            .field("commit_blocked", self.commit_blocked)
            .field("rewind", self.rewind)
    }

    /// Reads a breakdown back out of [`StallBreakdown::to_json`] output
    /// (missing fields read as zero; `None` only for a non-object).
    #[must_use]
    pub fn from_json(j: &Json) -> Option<StallBreakdown> {
        let g = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        j.get("frontend_empty")?;
        Some(StallBreakdown {
            frontend_empty: g("frontend_empty"),
            waiting_deps: g("waiting_deps"),
            issue_starved: g("issue_starved"),
            fu_contention: g("fu_contention"),
            irb_port: g("irb_port"),
            execution: g("execution"),
            commit_blocked: g("commit_blocked"),
            rewind: g("rewind"),
        })
    }
}

/// Cycle-accounting aggregate across every simulation a harness ran:
/// total cycles, the productive (committing) share, and the stall
/// breakdown for the rest. Emitted as the `"stalls"` field of the
/// figure binaries' `--json` output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallSummary {
    /// Total simulated cycles across the aggregated runs.
    pub cycles: u64,
    /// Cycles in which at least one instruction committed.
    pub productive_cycles: u64,
    /// Where the remaining cycles went.
    pub stalls: StallBreakdown,
}

impl StallSummary {
    /// Folds one run's statistics into the aggregate.
    pub fn add_run(&mut self, s: &SimStats) {
        self.cycles += s.cycles;
        self.productive_cycles += s.active_commit_cycles;
        self.stalls.add(&s.stalls);
    }

    /// The aggregate as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("cycles", self.cycles)
            .field("productive_cycles", self.productive_cycles)
            .field("breakdown", self.stalls.to_json())
    }
}

/// Everything a run reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Architected (per-program) instructions committed.
    pub committed_insts: u64,
    /// RUU entries committed (copies; 2× in dual modes).
    pub committed_copies: u64,
    /// Copies issued to functional units.
    pub fu_issues: u64,
    /// Duplicate copies that bypassed the functional units via reuse.
    pub fu_bypasses: u64,
    /// Integer-ALU-pool operations issued (the contended resource).
    pub int_alu_ops: u64,
    /// Integer-ALU-pool busy unit-cycles (utilization numerator).
    pub int_alu_busy_cycles: u64,
    /// Cycles in which at least one instruction was committed.
    pub active_commit_cycles: u64,
    /// Where every non-committing cycle went, one cause per cycle;
    /// `active_commit_cycles + stalls.total() == cycles` always.
    pub stalls: StallBreakdown,
    /// Sum of RUU occupancy over cycles (for the average).
    pub ruu_occupancy_sum: u64,
    /// Cycles the fetch stage delivered nothing, by cause.
    pub fetch_stalls_branch: u64,
    /// I-cache-miss fetch stalls.
    pub fetch_stalls_icache: u64,
    /// Fetch-queue-full stalls.
    pub fetch_stalls_queue: u64,
    /// BTB-bubble stalls.
    pub fetch_stalls_btb: u64,
    /// Cycles dispatch was blocked by a full RUU.
    pub dispatch_stalls_ruu: u64,
    /// Cycles dispatch was blocked by a full LSQ.
    pub dispatch_stalls_lsq: u64,
    /// Front-end prediction summary.
    pub branches: BranchSummary,
    /// L1I cache stats.
    pub l1i: CacheStats,
    /// L1D cache stats.
    pub l1d: CacheStats,
    /// L2 cache stats.
    pub l2: CacheStats,
    /// IRB summary (zeroed in modes without an IRB).
    pub irb: IrbSummary,
    /// DIE pair checks performed at commit.
    pub pairs_checked: u64,
    /// Pair mismatches (each triggers a rewind).
    pub pair_mismatches: u64,
    /// Fault-injection accounting.
    pub faults: FaultStats,
    /// Per-fault lifecycle classification (every injected fault lands
    /// in exactly one terminal outcome; see
    /// [`FaultLifecycle::conservation_holds`]).
    pub fault_lifecycle: FaultLifecycle,
    /// `true` if the run was cut short by the watchdog deadline
    /// ([`Simulator::with_watchdog`](crate::Simulator::with_watchdog));
    /// pending faults were then classified as hangs.
    pub watchdog_fired: bool,
    /// Reuse attribution (opcode class × PC × loop), present only when
    /// the run was configured with
    /// [`Simulator::with_attribution`](crate::Simulator::with_attribution).
    /// `None` keeps disabled runs byte-identical: the field is omitted
    /// from [`SimStats::to_json`] and never allocated.
    pub attribution: Option<Box<ReuseAttribution>>,
}

impl SimStats {
    /// Architected instructions per cycle — the paper's metric.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// [`SimStats::ipc`] ×1000 as an exact integer (byte-stable across
    /// hosts; the aggregation currency of the metrics and campaign
    /// layers).
    #[must_use]
    pub fn milli_ipc(&self) -> u64 {
        permille(self.committed_insts, self.cycles)
    }

    /// Copies (RUU entries) per cycle — the machine's raw throughput.
    #[must_use]
    pub fn copy_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_copies as f64 / self.cycles as f64
        }
    }

    /// Average RUU occupancy.
    #[must_use]
    pub fn avg_ruu_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ruu_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Integer-ALU pool utilization in `[0, 1]`, given the pool size.
    #[must_use]
    pub fn int_alu_utilization(&self, int_alus: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.int_alu_busy_cycles as f64 / (self.cycles * int_alus as u64) as f64
        }
    }

    /// Percentage IPC loss of `self` relative to a baseline run
    /// (positive = slower than baseline). The y-axis of Figure 2.
    #[must_use]
    pub fn ipc_loss_vs(&self, baseline: &SimStats) -> f64 {
        let (a, b) = (self.ipc(), baseline.ipc());
        if b == 0.0 {
            0.0
        } else {
            (1.0 - a / b) * 100.0
        }
    }

    /// Fraction of eligible duplicate work served by the IRB.
    #[must_use]
    pub fn bypass_fraction(&self) -> f64 {
        let n = self.fu_issues + self.fu_bypasses;
        if n == 0 {
            0.0
        } else {
            self.fu_bypasses as f64 / n as f64
        }
    }

    /// [`SimStats::bypass_fraction`] as an exact integer per-mille.
    #[must_use]
    pub fn bypass_permille(&self) -> u64 {
        permille(self.fu_bypasses, self.fu_issues + self.fu_bypasses)
    }

    /// Whether the cycle-accounting invariant holds: every simulated
    /// cycle is either productive or attributed to exactly one stall
    /// cause.
    #[must_use]
    pub fn stall_conservation_holds(&self) -> bool {
        self.active_commit_cycles + self.stalls.total() == self.cycles
    }

    /// The full statistics record as a JSON object (the machine-readable
    /// form behind the bench harness's `--json` flag).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let cache = |c: &CacheStats| {
            Json::obj()
                .field("accesses", c.accesses)
                .field("hits", c.hits)
                .field("writebacks", c.writebacks)
        };
        let j = Json::obj()
            .field("cycles", self.cycles)
            .field("committed_insts", self.committed_insts)
            .field("committed_copies", self.committed_copies)
            .field("ipc", self.ipc())
            .field("milli_ipc", self.milli_ipc())
            .field("fu_issues", self.fu_issues)
            .field("fu_bypasses", self.fu_bypasses)
            .field("bypass_permille", self.bypass_permille())
            .field("int_alu_ops", self.int_alu_ops)
            .field("int_alu_busy_cycles", self.int_alu_busy_cycles)
            .field("active_commit_cycles", self.active_commit_cycles)
            .field("stalls", self.stalls.to_json())
            .field("ruu_occupancy_sum", self.ruu_occupancy_sum)
            .field(
                "fetch_stalls",
                Json::obj()
                    .field("branch", self.fetch_stalls_branch)
                    .field("icache", self.fetch_stalls_icache)
                    .field("queue", self.fetch_stalls_queue)
                    .field("btb", self.fetch_stalls_btb),
            )
            .field(
                "dispatch_stalls",
                Json::obj()
                    .field("ruu", self.dispatch_stalls_ruu)
                    .field("lsq", self.dispatch_stalls_lsq),
            )
            .field(
                "branches",
                Json::obj()
                    .field("cond_branches", self.branches.cond_branches)
                    .field("cond_mispredicts", self.branches.cond_mispredicts)
                    .field("indirect_jumps", self.branches.indirect_jumps)
                    .field("indirect_mispredicts", self.branches.indirect_mispredicts)
                    .field("btb_miss_bubbles", self.branches.btb_miss_bubbles),
            )
            .field("l1i", cache(&self.l1i))
            .field("l1d", cache(&self.l1d))
            .field("l2", cache(&self.l2))
            .field(
                "irb",
                Json::obj()
                    .field("lookups", self.irb.buffer.lookups)
                    .field("pc_hits", self.irb.buffer.pc_hits)
                    .field("victim_hits", self.irb.buffer.victim_hits)
                    .field("inserts", self.irb.buffer.inserts)
                    .field("conflict_evictions", self.irb.buffer.conflict_evictions)
                    .field("invalidations", self.irb.buffer.invalidations)
                    .field("reuse_passed", self.irb.reuse_passed)
                    .field("reuse_failed", self.irb.reuse_failed)
                    .field("reuse_pass_permille", self.irb.reuse_pass_permille())
                    .field("hit_permille", self.irb.hit_permille())
                    .field("lookups_port_starved", self.irb.lookups_port_starved)
                    .field("inserts_port_starved", self.irb.inserts_port_starved),
            )
            .field("pairs_checked", self.pairs_checked)
            .field("pair_mismatches", self.pair_mismatches)
            .field(
                "faults",
                Json::obj()
                    .field("injected_fu", self.faults.injected_fu)
                    .field("injected_forward", self.faults.injected_forward)
                    .field("injected_irb", self.faults.injected_irb)
                    .field("detected", self.faults.detected)
                    .field("escaped", self.faults.escaped)
                    .field("silent_sie", self.faults.silent_sie),
            )
            .field(
                "fault_lifecycle",
                Json::obj()
                    .field("injected", self.fault_lifecycle.injected)
                    .field("detected", self.fault_lifecycle.detected)
                    .field("masked", self.fault_lifecycle.masked)
                    .field("silent", self.fault_lifecycle.silent)
                    .field("hung", self.fault_lifecycle.hung)
                    .field(
                        "detection_latency_sum",
                        self.fault_lifecycle.detection_latency_sum,
                    )
                    .field(
                        "detection_latency_max",
                        self.fault_lifecycle.detection_latency_max,
                    )
                    .field(
                        "latency_histogram",
                        self.fault_lifecycle
                            .latency_histogram
                            .iter()
                            .map(|&n| Json::from(n))
                            .collect::<Json>(),
                    )
                    .field("squash_depth_sum", self.fault_lifecycle.squash_depth_sum)
                    .field(
                        "refetch_penalty_sum",
                        self.fault_lifecycle.refetch_penalty_sum,
                    ),
            )
            .field("watchdog_fired", self.watchdog_fired);
        // Omitted entirely when attribution is off, so disabled runs
        // stay byte-identical to pre-attribution output.
        match &self.attribution {
            Some(a) => j.field("attribution", attribution_to_json(a)),
            None => j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_loss_matches_figure2_definition() {
        let base = SimStats {
            cycles: 100,
            committed_insts: 200,
            ..SimStats::default()
        };
        let slower = SimStats {
            cycles: 100,
            committed_insts: 150,
            ..SimStats::default()
        };
        assert!((slower.ipc_loss_vs(&base) - 25.0).abs() < 1e-12);
        assert!((base.ipc_loss_vs(&base)).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_bounded() {
        let s = SimStats {
            cycles: 100,
            int_alu_busy_cycles: 250,
            ..SimStats::default()
        };
        let u = s.int_alu_utilization(4);
        assert!((u - 0.625).abs() < 1e-12);
    }

    #[test]
    fn reuse_pass_rate_zero_when_unused() {
        assert_eq!(IrbSummary::default().reuse_pass_rate(), 0.0);
    }

    #[test]
    fn permille_fields_match_float_ratios() {
        let s = SimStats {
            cycles: 3,
            committed_insts: 2,
            fu_issues: 1,
            fu_bypasses: 3,
            ..SimStats::default()
        };
        assert_eq!(s.milli_ipc(), 666);
        assert_eq!(s.bypass_permille(), 750);
        assert_eq!(SimStats::default().milli_ipc(), 0);
        let irb = IrbSummary {
            reuse_passed: 1,
            reuse_failed: 2,
            ..IrbSummary::default()
        };
        assert_eq!(irb.reuse_pass_permille(), 333);
        assert_eq!(IrbSummary::default().hit_permille(), 0);
    }

    #[test]
    fn attribution_omitted_from_json_when_disabled() {
        let s = SimStats::default();
        assert!(!s.to_json().to_string().contains("attribution"));
        let on = SimStats {
            attribution: Some(Box::default()),
            ..SimStats::default()
        };
        let txt = on.to_json().to_string();
        assert!(txt.contains("\"attribution\""));
        assert!(txt.contains("\"hot_pcs\""));
        assert!(txt.contains("\"outside\""));
    }

    #[test]
    fn stall_breakdown_total_and_add() {
        let a = StallBreakdown {
            frontend_empty: 1,
            waiting_deps: 2,
            issue_starved: 3,
            fu_contention: 4,
            irb_port: 5,
            execution: 6,
            commit_blocked: 7,
            rewind: 8,
        };
        assert_eq!(a.total(), 36);
        let mut b = a;
        b.add(&a);
        assert_eq!(b.total(), 72);
        assert_eq!(b.rewind, 16);
    }

    #[test]
    fn stall_breakdown_json_round_trips() {
        let a = StallBreakdown {
            frontend_empty: 10,
            waiting_deps: 20,
            execution: 30,
            ..StallBreakdown::default()
        };
        let j = a.to_json();
        let back = StallBreakdown::from_json(&Json::parse(&j.to_string()).expect("parses"))
            .expect("object");
        assert_eq!(back, a);
        assert_eq!(StallBreakdown::from_json(&Json::obj()), None);
    }

    #[test]
    fn stall_conservation_checks_the_partition() {
        let mut s = SimStats {
            cycles: 10,
            active_commit_cycles: 6,
            ..SimStats::default()
        };
        s.stalls.waiting_deps = 4;
        assert!(s.stall_conservation_holds());
        s.stalls.waiting_deps = 5;
        assert!(!s.stall_conservation_holds());
    }

    #[test]
    fn stall_summary_accumulates_runs() {
        let mut s = SimStats {
            cycles: 10,
            active_commit_cycles: 6,
            ..SimStats::default()
        };
        s.stalls.execution = 4;
        let mut sum = StallSummary::default();
        sum.add_run(&s);
        sum.add_run(&s);
        assert_eq!(sum.cycles, 20);
        assert_eq!(sum.productive_cycles, 12);
        assert_eq!(sum.stalls.execution, 8);
    }
}
