//! Structured pipeline tracing: the [`Tracer`] sink trait, the event
//! record every pipeline stage emits, ready-made sinks
//! ([`NullTracer`], [`EventLog`], [`FlightRecorder`]) and the Chrome
//! `trace_event` JSON export that `chrome://tracing` and Perfetto load
//! directly.
//!
//! The layer is compiled in but disabled by default: the pipeline holds
//! a `&mut dyn Tracer` and caches [`Tracer::enabled`] once per run, so
//! the disabled path costs one predictable branch per emission site and
//! never allocates.

use redsim_util::Json;

/// What happened. One variant per observable pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// An instruction entered the fetch queue.
    Fetch,
    /// A copy was allocated an RUU (and possibly LSQ) slot.
    Dispatch,
    /// A copy won issue (`arg` 1 = functional unit, 0 = IRB reuse).
    Issue,
    /// A copy started executing (`arg` = latency in cycles).
    Execute,
    /// A copy completed and broadcast its result.
    Writeback,
    /// An architected instruction retired (`arg` = copies retired).
    Commit,
    /// An IRB lookup consumed a read port at fetch.
    IrbLookup,
    /// The IRB lookup hit (PC present in the buffer).
    IrbHit,
    /// A commit-time IRB insert succeeded.
    IrbInsert,
    /// An IRB port request was denied (`arg` 0 = read/lookup,
    /// 1 = write/insert).
    IrbPortDenied,
    /// A fault was injected; `seq` is the fault id and `arg` the site
    /// (0 = FU, 1 = forwarding bus, 2 = IRB cell).
    FaultInject,
    /// A fault was detected by the commit-time pair check; `seq` is the
    /// fault id.
    FaultDetect,
    /// A pair mismatch rewound both copies to re-execute.
    Rewind,
}

impl TraceEventKind {
    /// The stable event name used in exported traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Fetch => "fetch",
            TraceEventKind::Dispatch => "dispatch",
            TraceEventKind::Issue => "issue",
            TraceEventKind::Execute => "execute",
            TraceEventKind::Writeback => "writeback",
            TraceEventKind::Commit => "commit",
            TraceEventKind::IrbLookup => "irb_lookup",
            TraceEventKind::IrbHit => "irb_hit",
            TraceEventKind::IrbInsert => "irb_insert",
            TraceEventKind::IrbPortDenied => "irb_port_denied",
            TraceEventKind::FaultInject => "fault_inject",
            TraceEventKind::FaultDetect => "fault_detect",
            TraceEventKind::Rewind => "rewind",
        }
    }

    /// The export category: `pipeline`, `irb` or `fault`.
    #[must_use]
    pub fn category(self) -> &'static str {
        match self {
            TraceEventKind::Fetch
            | TraceEventKind::Dispatch
            | TraceEventKind::Issue
            | TraceEventKind::Execute
            | TraceEventKind::Writeback
            | TraceEventKind::Commit => "pipeline",
            TraceEventKind::IrbLookup
            | TraceEventKind::IrbHit
            | TraceEventKind::IrbInsert
            | TraceEventKind::IrbPortDenied => "irb",
            TraceEventKind::FaultInject | TraceEventKind::FaultDetect | TraceEventKind::Rewind => {
                "fault"
            }
        }
    }
}

/// One structured pipeline event. `Copy` and fixed-width on purpose:
/// recording is a handful of stores, so the flight recorder can run in
/// the hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event occurred on.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Dynamic-instruction sequence number, or the fault id for
    /// fault-lifecycle events.
    pub seq: u64,
    /// Program counter of the instruction involved (0 when unknown).
    pub pc: u64,
    /// Execution stream: 0 = primary, 1 = duplicate, 2 = machine-level
    /// (faults, rewinds).
    pub stream: u8,
    /// Kind-specific payload — see [`TraceEventKind`].
    pub arg: u64,
}

/// A sink for pipeline events. The pipeline asks [`Tracer::enabled`]
/// once per run; when it answers `false` no event is ever constructed.
pub trait Tracer {
    /// Whether the pipeline should emit events at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, ev: TraceEvent);
}

/// The default sink: tracing off, zero cost beyond one cached branch.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: TraceEvent) {}
}

/// A complete in-memory event log — every event of the run, in emission
/// order. Use for `sim --trace-out` style full captures.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: Vec<TraceEvent>,
}

impl EventLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the log as a Chrome `trace_event` JSON document.
    #[must_use]
    pub fn to_chrome_json(&self) -> Json {
        chrome_trace(&self.events, 0)
    }
}

impl Tracer for EventLog {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// A fixed-capacity ring buffer keeping the *last* `capacity` events —
/// the trailing cycles of the run. This is the post-mortem sink: the
/// campaign runner attaches one to a `Hang`-classified shard replay and
/// dumps the window that led into the livelock.
///
/// Memory is bounded by construction; once full, each new event evicts
/// the oldest and bumps [`FlightRecorder::dropped`].
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<TraceEvent>,
    next: usize,
    capacity: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a recorder that can hold
    /// nothing is a configuration bug, not a useful sink.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            next: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Events evicted because the window was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained window in chronological order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.capacity {
            return self.buf.clone();
        }
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Renders the retained window as a Chrome `trace_event` JSON
    /// document (dropped-event count lands in the metadata).
    #[must_use]
    pub fn to_chrome_json(&self) -> Json {
        chrome_trace(&self.snapshot(), self.dropped)
    }
}

impl Tracer for FlightRecorder {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.dropped += 1;
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
        }
    }
}

/// Renders events as a Chrome `trace_event` document: pipeline stages
/// become duration (`"ph":"X"`) events on a per-stream timeline (tid 0
/// = primary, 1 = duplicate), IRB and fault events become instants
/// (`"ph":"i"`). Timestamps are simulated cycles interpreted as
/// microseconds, so one trace-viewer microsecond is one machine cycle.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent], dropped: u64) -> Json {
    let rendered: Json = events.iter().map(render_event).collect();
    Json::obj()
        .field("traceEvents", rendered)
        .field("displayTimeUnit", "ms")
        .field(
            "metadata",
            Json::obj()
                .field("tool", "redsim")
                .field("clock", "simulated-cycles-as-us")
                .field("dropped_events", dropped),
        )
}

fn render_event(ev: &TraceEvent) -> Json {
    let j = Json::obj()
        .field("name", ev.kind.name())
        .field("cat", ev.kind.category())
        .field("ts", ev.cycle)
        .field("pid", 0u64)
        .field("tid", u64::from(ev.stream));
    let j = match ev.kind {
        TraceEventKind::Fetch
        | TraceEventKind::Dispatch
        | TraceEventKind::Issue
        | TraceEventKind::Writeback
        | TraceEventKind::Commit => j.field("ph", "X").field("dur", 1u64),
        TraceEventKind::Execute => j.field("ph", "X").field("dur", ev.arg.max(1)),
        _ => j.field("ph", "i").field(
            "s",
            if ev.kind.category() == "fault" {
                "g"
            } else {
                "t"
            },
        ),
    };
    j.field(
        "args",
        Json::obj()
            .field("seq", ev.seq)
            .field("pc", format!("{:#x}", ev.pc).as_str())
            .field("arg", ev.arg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: TraceEventKind, seq: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind,
            seq,
            pc: 0x400 + 4 * seq,
            stream: (seq % 2) as u8,
            arg: 1,
        }
    }

    #[test]
    fn null_tracer_reports_disabled() {
        assert!(!NullTracer.enabled());
        assert!(EventLog::new().enabled());
        assert!(FlightRecorder::new(4).enabled());
    }

    #[test]
    fn event_log_records_in_order() {
        let mut log = EventLog::new();
        for i in 0..5 {
            log.record(ev(i, TraceEventKind::Fetch, i));
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.events()[3].cycle, 3);
    }

    #[test]
    fn flight_recorder_keeps_the_last_window_chronologically() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..10 {
            fr.record(ev(i, TraceEventKind::Commit, i));
        }
        assert_eq!(fr.dropped(), 7);
        let snap = fr.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn flight_recorder_below_capacity_keeps_everything() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..3 {
            fr.record(ev(i, TraceEventKind::Issue, i));
        }
        assert_eq!(fr.dropped(), 0);
        assert_eq!(fr.snapshot().len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn flight_recorder_rejects_zero_capacity() {
        let _ = FlightRecorder::new(0);
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_shape() {
        let mut log = EventLog::new();
        log.record(ev(1, TraceEventKind::Fetch, 0));
        log.record(ev(2, TraceEventKind::Execute, 0));
        log.record(ev(3, TraceEventKind::IrbHit, 1));
        log.record(ev(4, TraceEventKind::FaultInject, 9));
        let text = log.to_chrome_json().to_string();
        let parsed = Json::parse(&text).expect("chrome trace parses back");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::items)
            .expect("traceEvents");
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("fetch"));
        assert_eq!(events[2].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(events[3].get("cat").and_then(Json::as_str), Some("fault"));
        assert_eq!(
            parsed
                .get("metadata")
                .and_then(|m| m.get("dropped_events"))
                .and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn export_is_deterministic() {
        let mk = || {
            let mut log = EventLog::new();
            for i in 0..50 {
                log.record(ev(i, TraceEventKind::Writeback, i));
            }
            log.to_chrome_json().to_string()
        };
        assert_eq!(mk(), mk());
    }
}
