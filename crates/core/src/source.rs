//! Committed-path instruction sources for the timing models.

use redsim_isa::emu::Emulator;
use redsim_isa::trace::DynInst;
use redsim_isa::{EmuError, Program};

/// A stream of committed dynamic instructions.
///
/// The timing models are trace-driven: they pull the committed path from
/// a source and decide *when* each instruction moves through the
/// machine. [`EmulatorSource`] runs the functional emulator lazily;
/// [`VecSource`] replays a pre-recorded trace (useful for tests and for
/// running many machine configurations over the identical instruction
/// stream).
pub trait InstructionSource {
    /// The next committed instruction, or `None` at end of program.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution faults (bad memory access,
    /// runaway program exceeding its budget).
    fn next_inst(&mut self) -> Result<Option<DynInst>, EmuError>;
}

/// Drives the functional emulator on demand.
#[derive(Debug)]
pub struct EmulatorSource {
    emu: Emulator,
    budget: u64,
    drawn: u64,
}

impl EmulatorSource {
    /// Creates a source executing `program` with an instruction budget
    /// (a runaway-loop backstop).
    #[must_use]
    pub fn new(program: &Program, budget: u64) -> Self {
        EmulatorSource {
            emu: Emulator::new(program),
            budget,
            drawn: 0,
        }
    }

    /// The wrapped emulator (e.g. to read program output afterwards).
    #[must_use]
    pub fn emulator(&self) -> &Emulator {
        &self.emu
    }
}

impl InstructionSource for EmulatorSource {
    fn next_inst(&mut self) -> Result<Option<DynInst>, EmuError> {
        if self.emu.halted() {
            return Ok(None);
        }
        if self.drawn >= self.budget {
            return Err(EmuError::BudgetExhausted {
                executed: self.drawn,
            });
        }
        self.drawn += 1;
        self.emu.step()
    }
}

/// Replays a pre-recorded trace.
#[derive(Debug, Clone)]
pub struct VecSource {
    trace: Vec<DynInst>,
    pos: usize,
}

impl VecSource {
    /// Creates a source replaying `trace` in order.
    #[must_use]
    pub fn new(trace: Vec<DynInst>) -> Self {
        VecSource { trace, pos: 0 }
    }

    /// Number of instructions remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.pos
    }
}

impl InstructionSource for VecSource {
    fn next_inst(&mut self) -> Result<Option<DynInst>, EmuError> {
        let item = self.trace.get(self.pos).copied();
        if item.is_some() {
            self.pos += 1;
        }
        Ok(item)
    }
}

/// Replays a borrowed trace without copying it.
///
/// Sweeps run many machine configurations over the identical committed
/// path; borrowing lets every run share one materialized trace instead
/// of cloning a multi-million-entry `Vec` per run (what [`VecSource`]
/// requires).
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    trace: &'a [DynInst],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Creates a source replaying `trace` in order.
    #[must_use]
    pub fn new(trace: &'a [DynInst]) -> Self {
        SliceSource { trace, pos: 0 }
    }

    /// Number of instructions remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.pos
    }
}

impl InstructionSource for SliceSource<'_> {
    fn next_inst(&mut self) -> Result<Option<DynInst>, EmuError> {
        let item = self.trace.get(self.pos).copied();
        if item.is_some() {
            self.pos += 1;
        }
        Ok(item)
    }
}

/// Replays a reference-counted trace shared across threads.
///
/// Cloning an `ArcSource` (or the underlying `Arc<[DynInst]>`) is a
/// pointer bump, so a parallel sweep can hand every worker the same
/// trace without copying instruction data.
#[derive(Debug, Clone)]
pub struct ArcSource {
    trace: std::sync::Arc<[DynInst]>,
    pos: usize,
}

impl ArcSource {
    /// Creates a source replaying `trace` in order.
    #[must_use]
    pub fn new(trace: std::sync::Arc<[DynInst]>) -> Self {
        ArcSource { trace, pos: 0 }
    }

    /// Number of instructions remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.pos
    }
}

impl InstructionSource for ArcSource {
    fn next_inst(&mut self) -> Result<Option<DynInst>, EmuError> {
        let item = self.trace.get(self.pos).copied();
        if item.is_some() {
            self.pos += 1;
        }
        Ok(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_isa::asm::assemble;

    #[test]
    fn emulator_source_streams_until_halt() {
        let p = assemble("main: li a0, 1\n li a1, 2\n halt\n").unwrap();
        let mut s = EmulatorSource::new(&p, 100);
        let mut n = 0;
        while let Some(d) = s.next_inst().unwrap() {
            assert_eq!(d.seq, n);
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(s.next_inst().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn emulator_source_enforces_budget() {
        let p = assemble("spin: j spin\n").unwrap();
        let mut s = EmulatorSource::new(&p, 10);
        for _ in 0..10 {
            assert!(s.next_inst().unwrap().is_some());
        }
        assert!(s.next_inst().is_err());
    }

    #[test]
    fn vec_source_replays_in_order() {
        let p = assemble("main: li a0, 1\n add a1, a0, a0\n halt\n").unwrap();
        let trace = redsim_isa::emu::Emulator::new(&p).run_trace(100).unwrap();
        let mut s = VecSource::new(trace.clone());
        assert_eq!(s.remaining(), 3);
        for want in &trace {
            assert_eq!(s.next_inst().unwrap().as_ref(), Some(want));
        }
        assert!(s.next_inst().unwrap().is_none());
        assert_eq!(s.remaining(), 0);
    }

    fn drain(s: &mut dyn InstructionSource) -> Vec<DynInst> {
        let mut out = Vec::new();
        while let Some(d) = s.next_inst().unwrap() {
            out.push(d);
        }
        out
    }

    #[test]
    fn slice_and_arc_sources_stream_identically_to_vec_source() {
        let p = assemble("main: li a0, 5\nloop: addi a0, a0, -1\n bnez a0, loop\n halt\n").unwrap();
        let trace = redsim_isa::emu::Emulator::new(&p).run_trace(100).unwrap();
        let from_vec = drain(&mut VecSource::new(trace.clone()));
        let from_slice = drain(&mut SliceSource::new(&trace));
        let arc: std::sync::Arc<[DynInst]> = trace.clone().into();
        let from_arc = drain(&mut ArcSource::new(arc));
        assert_eq!(from_vec, trace);
        assert_eq!(from_slice, from_vec);
        assert_eq!(from_arc, from_vec);
    }

    #[test]
    fn slice_source_tracks_remaining() {
        let p = assemble("main: li a0, 1\n halt\n").unwrap();
        let trace = redsim_isa::emu::Emulator::new(&p).run_trace(100).unwrap();
        let mut s = SliceSource::new(&trace);
        assert_eq!(s.remaining(), 2);
        s.next_inst().unwrap();
        assert_eq!(s.remaining(), 1);
        drain(&mut s);
        assert_eq!(s.remaining(), 0);
        assert!(s.next_inst().unwrap().is_none(), "stays exhausted");
    }
}
