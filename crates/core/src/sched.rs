//! Event-driven scheduling structures: the ready bitset and the
//! completion calendar.
//!
//! Together these replace the O(window) per-cycle scans the pipeline
//! originally performed: instead of filtering every RUU entry for
//! `Ready` candidates at issue and `complete_at == cycle` entries at
//! writeback, the pipeline *marks* a ring slot exactly when the
//! corresponding transition happens and *walks* exactly the work due.
//! `DESIGN.md` ("The event-driven scheduling core" and §12) documents
//! the invariants that keep these structures in sync with the RUU's
//! per-entry `EntryState`.
//!
//! Both structures have fixed backing storage sized at construction:
//! the steady-state cycle loop is allocation-free.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A set of ready-to-issue RUU entries, stored as one bit per ring
/// slot and read in ring (= age) order.
///
/// The pipeline keeps one set per stream so the §3.1 primary-first
/// selection policy becomes a read order (primary set before duplicate
/// set) instead of a per-cycle sort.
///
/// Entries that lose issue arbitration stay ready for many consecutive
/// cycles; here a still-ready entry costs nothing at all between
/// cycles — its bit simply stays set. Wakeup ([`ReadySet::insert`]) and
/// issue ([`ReadySet::remove`]) are single branchless word updates, and
/// candidate collection ([`ReadySet::append_ring`]) walks whole words
/// with trailing-zeros iteration, touching 1 bit of state per window
/// slot instead of a word per queued entry.
///
/// Because the RUU ring is a power of two and its live window never
/// exceeds the ring size, slot order walked from the window base *is*
/// ascending sequence order — the same oldest-first order the previous
/// sorted queue produced.
///
/// # Examples
///
/// ```
/// use redsim_core::sched::ReadySet;
///
/// let mut s = ReadySet::new(64);
/// s.insert(7);
/// s.insert(3);
/// let mut out = Vec::new();
/// // Window of 16 entries starting at slot 0 == seq 100.
/// s.append_ring(0, 16, 100, &mut out);
/// assert_eq!(out, [103, 107], "oldest (smallest seq) first");
/// s.remove(3); // seq 103 issued; 107 is still ready
/// out.clear();
/// s.append_ring(0, 16, 100, &mut out);
/// assert_eq!(out, [107]);
/// ```
#[derive(Debug, Default)]
pub struct ReadySet {
    /// One bit per ring slot.
    words: Vec<u64>,
}

impl ReadySet {
    /// Creates an empty set over a ring of `slots` slots (a power of
    /// two, at least 64 — the RUU ring guarantees both).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        assert!(
            slots >= 64 && slots.is_power_of_two(),
            "ring size must be a power of two >= 64"
        );
        ReadySet {
            words: vec![0; slots / 64],
        }
    }

    /// Marks `slot` ready (idempotent).
    #[inline]
    pub fn insert(&mut self, slot: usize) {
        self.words[slot >> 6] |= 1 << (slot & 63);
    }

    /// Clears `slot` (idempotent).
    #[inline]
    pub fn remove(&mut self, slot: usize) {
        self.words[slot >> 6] &= !(1 << (slot & 63));
    }

    /// `true` when no slot is marked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Marked slot count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Appends the seq of every marked slot inside the live window to
    /// `out`, in ring order from the window base (= ascending seq).
    ///
    /// The window starts at ring slot `base_slot` (holding seq
    /// `base_seq`) and spans `len` slots, wrapping modulo the ring
    /// size.
    pub fn append_ring(&self, base_slot: usize, len: usize, base_seq: u64, out: &mut Vec<u64>) {
        walk_ring(
            base_slot,
            len,
            self.words.len(),
            |w| self.words[w],
            |offset| {
                out.push(base_seq + offset);
            },
        );
    }

    /// Appends the seqs marked in `a` *or* `b` over the shared live
    /// window, in ring order (the symmetric oldest-first selection
    /// policy across both streams). Both sets keep their contents.
    pub fn append_union_ring(
        a: &ReadySet,
        b: &ReadySet,
        base_slot: usize,
        len: usize,
        base_seq: u64,
        out: &mut Vec<u64>,
    ) {
        debug_assert_eq!(a.words.len(), b.words.len());
        walk_ring(
            base_slot,
            len,
            a.words.len(),
            |w| a.words[w] | b.words[w],
            |offset| out.push(base_seq + offset),
        );
    }
}

/// Walks the marked slots of a wrapped window `[base_slot, base_slot +
/// len)` over a ring of `words * 64` slots, calling `emit` with each
/// marked slot's offset from the window base, in window order.
///
/// The window is at most one wrap, so it splits into at most two
/// linear spans; each span is scanned a word at a time with the
/// out-of-window bits masked off and the survivors drained by
/// trailing-zeros iteration.
#[inline]
fn walk_ring(
    base_slot: usize,
    len: usize,
    words: usize,
    fetch: impl Fn(usize) -> u64,
    mut emit: impl FnMut(u64),
) {
    let slots = words * 64;
    debug_assert!(len <= slots);
    let mut span = |lo: usize, hi: usize| {
        if lo >= hi {
            return;
        }
        let slot_mask = slots as u64 - 1;
        for w in (lo >> 6)..=((hi - 1) >> 6) {
            let mut bits = fetch(w);
            if w == lo >> 6 {
                bits &= !0 << (lo & 63);
            }
            if w == (hi - 1) >> 6 {
                bits &= !0 >> (63 - ((hi - 1) & 63));
            }
            while bits != 0 {
                let slot = (w << 6) + bits.trailing_zeros() as usize;
                emit((slot as u64).wrapping_sub(base_slot as u64) & slot_mask);
                bits &= bits - 1;
            }
        }
    };
    let end = base_slot + len;
    span(base_slot, end.min(slots));
    span(0, end.saturating_sub(slots));
}

/// Near-horizon bucket count of the calendar's timing wheel. Must be a
/// power of two. The default machine's worst completion delta (an
/// unpipelined FP sqrt plus a full L1→L2→memory miss chain) is far
/// below this, so in practice every event lands in the wheel; deltas
/// beyond the horizon (pathological user-configured latencies) spill
/// into an overflow heap.
const WHEEL: usize = 512;

/// A completion calendar: a timing wheel keyed by completion cycle.
///
/// [`Calendar::schedule`] files a sequence number under its
/// `complete_at` cycle; [`Calendar::pop_due`] returns exactly the seqs
/// completing *this* cycle, in ascending seq order — the order the
/// original full-window writeback scan produced. The wheel relies on
/// the cycle loop popping every cycle (cycles never skip), so a bucket
/// is always empty by the time the wheel wraps back onto it.
///
/// # Examples
///
/// ```
/// use redsim_core::sched::Calendar;
///
/// let mut c = Calendar::new();
/// c.schedule(5, 1, 40);
/// c.schedule(5, 2, 12);
/// c.schedule(6, 2, 7);
/// let mut due = Vec::new();
/// c.pop_due(5, &mut due);
/// assert_eq!(due, [12, 40], "due this cycle, ascending seq");
/// c.pop_due(6, &mut due);
/// assert_eq!(due, [7]);
/// ```
#[derive(Debug)]
pub struct Calendar {
    wheel: Vec<Vec<u64>>,
    /// `(cycle, seq)` events scheduled beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<(u64, u64)>>,
    pending: usize,
}

impl Default for Calendar {
    fn default() -> Self {
        Self::new()
    }
}

impl Calendar {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            wheel: (0..WHEEL).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            pending: 0,
        }
    }

    /// Schedules `seq` to complete at cycle `at` (`now` is the current
    /// cycle; `at` must not be in the past).
    pub fn schedule(&mut self, at: u64, now: u64, seq: u64) {
        debug_assert!(at > now, "completions are strictly in the future");
        self.pending += 1;
        if at - now < WHEEL as u64 {
            self.wheel[at as usize & (WHEEL - 1)].push(seq);
        } else {
            self.overflow.push(Reverse((at, seq)));
        }
    }

    /// Replaces `out` with every seq due at cycle `now`, ascending.
    #[inline]
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<u64>) {
        out.clear();
        if self.pending == 0 {
            return;
        }
        out.append(&mut self.wheel[now as usize & (WHEEL - 1)]);
        while let Some(&Reverse((c, s))) = self.overflow.peek() {
            debug_assert!(c >= now, "overflow events cannot be missed");
            if c != now {
                break;
            }
            self.overflow.pop();
            out.push(s);
        }
        self.pending -= out.len();
        out.sort_unstable();
    }

    /// Events filed and not yet popped.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_set_orders_by_ring_position_not_insertion() {
        let mut s = ReadySet::new(64);
        for slot in [9, 2, 5, 11, 3] {
            s.insert(slot);
        }
        assert_eq!(s.len(), 5);
        let mut out = Vec::new();
        s.append_ring(0, 64, 0, &mut out);
        assert_eq!(out, [2, 3, 5, 9, 11]);
        assert_eq!(s.len(), 5, "append_ring keeps slots marked");
    }

    #[test]
    fn ready_set_survivors_persist_across_cycles() {
        let mut s = ReadySet::new(64);
        for slot in [4, 8, 6] {
            s.insert(slot);
        }
        let mut out = Vec::new();
        s.append_ring(0, 64, 0, &mut out);
        assert_eq!(out, [4, 6, 8]);
        // Cycle issues 4 and 8; 6 lost arbitration and stays ready.
        s.remove(4);
        s.remove(8);
        // A younger entry wakes up next cycle, plus one older than the
        // survivor (a replayed entry).
        s.insert(10);
        s.insert(5);
        out.clear();
        s.append_ring(0, 64, 0, &mut out);
        assert_eq!(out, [5, 6, 10]);
    }

    #[test]
    fn ring_walk_wraps_and_translates_to_seqs() {
        let mut s = ReadySet::new(64);
        // Window of 8 slots starting at slot 61: ring order is
        // 61, 62, 63, 0, 1, 2, 3, 4.
        for slot in [62, 1, 61, 4] {
            s.insert(slot);
        }
        // A marked slot *outside* the window must not be reported.
        s.insert(40);
        let mut out = Vec::new();
        s.append_ring(61, 8, 500, &mut out);
        assert_eq!(out, [500, 501, 504, 507], "ring order, window only");
    }

    #[test]
    fn union_interleaves_two_streams_by_ring_order() {
        let mut p = ReadySet::new(64);
        let mut d = ReadySet::new(64);
        for slot in [0, 4, 6] {
            p.insert(slot);
        }
        for slot in [1, 5, 7] {
            d.insert(slot);
        }
        let mut out = Vec::new();
        ReadySet::append_union_ring(&p, &d, 0, 64, 0, &mut out);
        assert_eq!(out, [0, 1, 4, 5, 6, 7]);
        assert_eq!(p.len(), 3);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn union_handles_empty_sides() {
        let mut p = ReadySet::new(64);
        let d = ReadySet::new(64);
        p.insert(3);
        let mut out = Vec::new();
        ReadySet::append_union_ring(&p, &d, 0, 64, 0, &mut out);
        assert_eq!(out, [3]);
        p.remove(3);
        out.clear();
        ReadySet::append_union_ring(&p, &d, 0, 64, 0, &mut out);
        assert!(out.is_empty());
        assert!(p.is_empty() && d.is_empty());
    }

    #[test]
    fn multi_word_windows_visit_every_word() {
        let mut s = ReadySet::new(256);
        for slot in [0, 63, 64, 127, 128, 200, 255] {
            s.insert(slot);
        }
        let mut out = Vec::new();
        s.append_ring(0, 256, 0, &mut out);
        assert_eq!(out, [0, 63, 64, 127, 128, 200, 255]);
        // A wrapped window starting mid-word in the last word.
        out.clear();
        s.append_ring(250, 100, 1000, &mut out);
        // Offsets: 255-250=5, then 0→6, 63→69, 64→70.
        assert_eq!(out, [1005, 1006, 1069, 1070]);
    }

    #[test]
    fn calendar_pops_exactly_the_due_cycle() {
        let mut c = Calendar::new();
        c.schedule(10, 0, 1);
        c.schedule(12, 0, 2);
        c.schedule(10, 3, 3);
        let mut out = Vec::new();
        for cycle in 0..10 {
            c.pop_due(cycle, &mut out);
            assert!(out.is_empty(), "nothing due at {cycle}");
        }
        c.pop_due(10, &mut out);
        assert_eq!(out, [1, 3]);
        c.pop_due(11, &mut out);
        assert!(out.is_empty());
        c.pop_due(12, &mut out);
        assert_eq!(out, [2]);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn calendar_routes_far_events_through_the_overflow_heap() {
        let mut c = Calendar::new();
        let far = WHEEL as u64 * 3 + 17;
        c.schedule(far, 0, 42);
        c.schedule(far, 1, 7);
        c.schedule(2, 1, 9);
        let mut out = Vec::new();
        c.pop_due(2, &mut out);
        assert_eq!(out, [9]);
        // Walk the clock to the far cycle; buckets must stay clean as
        // the wheel wraps several times.
        for cycle in 3..far {
            c.pop_due(cycle, &mut out);
            assert!(out.is_empty(), "spurious event at {cycle}");
        }
        c.pop_due(far, &mut out);
        assert_eq!(out, [7, 42], "overflow events fire at their cycle");
    }

    #[test]
    fn calendar_recycles_bucket_storage() {
        let mut c = Calendar::new();
        let mut out = Vec::new();
        for round in 0..4u64 {
            let at = round * WHEEL as u64 + 5;
            if at > round * WHEEL as u64 {
                c.schedule(at, round * WHEEL as u64, round);
            }
            c.pop_due(at, &mut out);
            assert_eq!(out, [round]);
        }
    }
}

#[cfg(test)]
mod generative {
    //! Seeded model test: the bitset walk must agree with a sorted-set
    //! reference across random windows and churn.

    use super::*;
    use redsim_util::Rng;

    #[test]
    fn ring_walk_matches_sorted_reference() {
        let mut rng = Rng::new(0x5c4e_d001);
        for _ in 0..200 {
            let slots = *rng.pick(&[64usize, 128, 512]);
            let mut s = ReadySet::new(slots);
            let mut model: Vec<usize> = Vec::new();
            for _ in 0..rng.range_u64(1, 60) {
                let slot = rng.index(slots);
                if rng.flip() {
                    s.insert(slot);
                    if !model.contains(&slot) {
                        model.push(slot);
                    }
                } else {
                    s.remove(slot);
                    model.retain(|&m| m != slot);
                }
            }
            // Random live window, possibly wrapping, possibly full.
            let base_slot = rng.index(slots);
            let len = rng.index(slots + 1);
            let base_seq = rng.below(1 << 40);
            let mut got = Vec::new();
            s.append_ring(base_slot, len, base_seq, &mut got);
            let mut want: Vec<u64> = model
                .iter()
                .map(|&m| (m + slots - base_slot) % slots)
                .filter(|&off| off < len)
                .map(|off| base_seq + off as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "slots={slots} base={base_slot} len={len}");
        }
    }
}
