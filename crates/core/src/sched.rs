//! Event-driven scheduling structures: the ready queue and the
//! completion calendar.
//!
//! Together these replace the O(window) per-cycle scans the pipeline
//! originally performed: instead of filtering every RUU entry for
//! `Ready` candidates at issue and `complete_at == cycle` entries at
//! writeback, the pipeline *pushes* a sequence number exactly when the
//! corresponding transition happens and *pops* exactly the work due.
//! `DESIGN.md` ("The event-driven scheduling core") documents the
//! invariants that keep these structures in sync with the RUU's
//! per-entry `EntryState`.
//!
//! Both structures recycle their backing storage: pushes after the
//! warm-up phase never allocate, which keeps the steady-state cycle
//! loop allocation-free.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A set of ready-to-issue RUU entries, read oldest-first.
///
/// The pipeline keeps one queue per stream so the §3.1 primary-first
/// selection policy becomes a read order (primary queue before
/// duplicate queue) instead of a per-cycle sort.
///
/// Entries that lose issue arbitration stay ready for many consecutive
/// cycles, so the queue is a *persistent* sorted list rather than a
/// heap that is drained and rebuilt: [`ReadyQueue::push`] appends to an
/// unsorted incoming buffer, [`ReadyQueue::append_to`] folds arrivals
/// in (new seqs are usually the largest, making the fold a plain
/// append) and copies the list out, and [`ReadyQueue::sweep`] drops the
/// entries that issued. A still-ready entry costs one word of memcpy
/// per cycle instead of a heap pop + re-push.
///
/// # Examples
///
/// ```
/// use redsim_core::sched::ReadyQueue;
///
/// let mut q = ReadyQueue::default();
/// q.push(7);
/// q.push(3);
/// let mut out = Vec::new();
/// q.append_to(&mut out);
/// assert_eq!(out, [3, 7], "oldest (smallest seq) first");
/// q.sweep(|seq| seq != 3);
/// out.clear();
/// q.append_to(&mut out);
/// assert_eq!(out, [7], "3 issued; 7 is still ready");
/// ```
#[derive(Debug, Default)]
pub struct ReadyQueue {
    /// The ready set, ascending by seq.
    sorted: Vec<u64>,
    /// Arrivals since the last fold, unsorted.
    incoming: Vec<u64>,
    /// Merge scratch, retained for reuse.
    scratch: Vec<u64>,
}

impl ReadyQueue {
    /// Adds a newly ready entry.
    pub fn push(&mut self, seq: u64) {
        self.incoming.push(seq);
    }

    /// Folds `incoming` into `sorted`.
    fn normalize(&mut self) {
        if self.incoming.is_empty() {
            return;
        }
        self.incoming.sort_unstable();
        if self.sorted.last().is_none_or(|&l| l < self.incoming[0]) {
            self.sorted.append(&mut self.incoming);
            return;
        }
        self.scratch.clear();
        let (mut i, mut j) = (0, 0);
        while i < self.sorted.len() && j < self.incoming.len() {
            if self.sorted[i] <= self.incoming[j] {
                self.scratch.push(self.sorted[i]);
                i += 1;
            } else {
                self.scratch.push(self.incoming[j]);
                j += 1;
            }
        }
        self.scratch.extend_from_slice(&self.sorted[i..]);
        self.scratch.extend_from_slice(&self.incoming[j..]);
        std::mem::swap(&mut self.sorted, &mut self.scratch);
        self.incoming.clear();
        debug_assert!(
            self.sorted.windows(2).all(|w| w[0] < w[1]),
            "a seq was pushed while already queued"
        );
    }

    /// Appends the ready set to `out` in ascending order, keeping it
    /// queued (drop issued entries afterwards with
    /// [`ReadyQueue::sweep`]).
    pub fn append_to(&mut self, out: &mut Vec<u64>) {
        self.normalize();
        out.extend_from_slice(&self.sorted);
    }

    /// Drops every queued seq for which `keep` returns `false`.
    pub fn sweep(&mut self, mut keep: impl FnMut(u64) -> bool) {
        self.sorted.retain(|&s| keep(s));
    }

    /// `true` when nothing is ready.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty() && self.incoming.is_empty()
    }

    /// Queued entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len() + self.incoming.len()
    }
}

/// Appends the union of two ready queues to `out` in ascending seq
/// order (the symmetric oldest-first selection policy). Both queues
/// keep their contents.
pub fn merge_into(a: &mut ReadyQueue, b: &mut ReadyQueue, out: &mut Vec<u64>) {
    a.normalize();
    b.normalize();
    let (xs, ys) = (&a.sorted, &b.sorted);
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        if xs[i] < ys[j] {
            out.push(xs[i]);
            i += 1;
        } else {
            out.push(ys[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&xs[i..]);
    out.extend_from_slice(&ys[j..]);
}

/// Near-horizon bucket count of the calendar's timing wheel. Must be a
/// power of two. The default machine's worst completion delta (an
/// unpipelined FP sqrt plus a full L1→L2→memory miss chain) is far
/// below this, so in practice every event lands in the wheel; deltas
/// beyond the horizon (pathological user-configured latencies) spill
/// into an overflow heap.
const WHEEL: usize = 512;

/// A completion calendar: a timing wheel keyed by completion cycle.
///
/// [`Calendar::schedule`] files a sequence number under its
/// `complete_at` cycle; [`Calendar::pop_due`] returns exactly the seqs
/// completing *this* cycle, in ascending seq order — the order the
/// original full-window writeback scan produced. The wheel relies on
/// the cycle loop popping every cycle (cycles never skip), so a bucket
/// is always empty by the time the wheel wraps back onto it.
///
/// # Examples
///
/// ```
/// use redsim_core::sched::Calendar;
///
/// let mut c = Calendar::new();
/// c.schedule(5, 1, 40);
/// c.schedule(5, 2, 12);
/// c.schedule(6, 2, 7);
/// let mut due = Vec::new();
/// c.pop_due(5, &mut due);
/// assert_eq!(due, [12, 40], "due this cycle, ascending seq");
/// c.pop_due(6, &mut due);
/// assert_eq!(due, [7]);
/// ```
#[derive(Debug)]
pub struct Calendar {
    wheel: Vec<Vec<u64>>,
    /// `(cycle, seq)` events scheduled beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<(u64, u64)>>,
    pending: usize,
}

impl Default for Calendar {
    fn default() -> Self {
        Self::new()
    }
}

impl Calendar {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            wheel: (0..WHEEL).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            pending: 0,
        }
    }

    /// Schedules `seq` to complete at cycle `at` (`now` is the current
    /// cycle; `at` must not be in the past).
    pub fn schedule(&mut self, at: u64, now: u64, seq: u64) {
        debug_assert!(at > now, "completions are strictly in the future");
        self.pending += 1;
        if at - now < WHEEL as u64 {
            self.wheel[at as usize & (WHEEL - 1)].push(seq);
        } else {
            self.overflow.push(Reverse((at, seq)));
        }
    }

    /// Replaces `out` with every seq due at cycle `now`, ascending.
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<u64>) {
        out.clear();
        out.append(&mut self.wheel[now as usize & (WHEEL - 1)]);
        while let Some(&Reverse((c, s))) = self.overflow.peek() {
            debug_assert!(c >= now, "overflow events cannot be missed");
            if c != now {
                break;
            }
            self.overflow.pop();
            out.push(s);
        }
        self.pending -= out.len();
        out.sort_unstable();
    }

    /// Events filed and not yet popped.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_queue_orders_by_seq_not_insertion() {
        let mut q = ReadyQueue::default();
        for s in [9, 2, 5, 11, 3] {
            q.push(s);
        }
        assert_eq!(q.len(), 5);
        let mut out = Vec::new();
        q.append_to(&mut out);
        assert_eq!(out, [2, 3, 5, 9, 11]);
        assert_eq!(q.len(), 5, "append_to keeps entries queued");
    }

    #[test]
    fn ready_queue_sweep_retains_survivors_across_cycles() {
        let mut q = ReadyQueue::default();
        for s in [4, 8, 6] {
            q.push(s);
        }
        let mut out = Vec::new();
        q.append_to(&mut out);
        assert_eq!(out, [4, 6, 8]);
        // Cycle issues 4 and 8; 6 lost arbitration and stays ready.
        q.sweep(|s| s == 6);
        // A younger entry wakes up next cycle, plus one older than the
        // survivor (a replayed entry) to exercise the merge fold.
        q.push(10);
        q.push(5);
        out.clear();
        q.append_to(&mut out);
        assert_eq!(out, [5, 6, 10]);
    }

    #[test]
    fn merge_interleaves_two_streams_by_seq() {
        let mut p = ReadyQueue::default();
        let mut d = ReadyQueue::default();
        for s in [0, 4, 6] {
            p.push(s);
        }
        for s in [1, 5, 7] {
            d.push(s);
        }
        let mut out = Vec::new();
        merge_into(&mut p, &mut d, &mut out);
        assert_eq!(out, [0, 1, 4, 5, 6, 7]);
        assert_eq!(p.len(), 3);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn merge_handles_empty_sides() {
        let mut p = ReadyQueue::default();
        let mut d = ReadyQueue::default();
        p.push(3);
        let mut out = Vec::new();
        merge_into(&mut p, &mut d, &mut out);
        assert_eq!(out, [3]);
        p.sweep(|_| false);
        out.clear();
        merge_into(&mut p, &mut d, &mut out);
        assert!(out.is_empty());
        assert!(p.is_empty() && d.is_empty());
    }

    #[test]
    fn calendar_pops_exactly_the_due_cycle() {
        let mut c = Calendar::new();
        c.schedule(10, 0, 1);
        c.schedule(12, 0, 2);
        c.schedule(10, 3, 3);
        let mut out = Vec::new();
        for cycle in 0..10 {
            c.pop_due(cycle, &mut out);
            assert!(out.is_empty(), "nothing due at {cycle}");
        }
        c.pop_due(10, &mut out);
        assert_eq!(out, [1, 3]);
        c.pop_due(11, &mut out);
        assert!(out.is_empty());
        c.pop_due(12, &mut out);
        assert_eq!(out, [2]);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn calendar_routes_far_events_through_the_overflow_heap() {
        let mut c = Calendar::new();
        let far = WHEEL as u64 * 3 + 17;
        c.schedule(far, 0, 42);
        c.schedule(far, 1, 7);
        c.schedule(2, 1, 9);
        let mut out = Vec::new();
        c.pop_due(2, &mut out);
        assert_eq!(out, [9]);
        // Walk the clock to the far cycle; buckets must stay clean as
        // the wheel wraps several times.
        for cycle in 3..far {
            c.pop_due(cycle, &mut out);
            assert!(out.is_empty(), "spurious event at {cycle}");
        }
        c.pop_due(far, &mut out);
        assert_eq!(out, [7, 42], "overflow events fire at their cycle");
    }

    #[test]
    fn calendar_recycles_bucket_storage() {
        let mut c = Calendar::new();
        let mut out = Vec::new();
        for round in 0..4u64 {
            let at = round * WHEEL as u64 + 5;
            if at > round * WHEEL as u64 {
                c.schedule(at, round * WHEEL as u64, round);
            }
            c.pop_due(at, &mut out);
            assert_eq!(out, [round]);
        }
    }
}
