//! Front-end prediction: direction predictor + BTB + RAS.

use redsim_isa::trace::DynInst;
use redsim_isa::{IntReg, Opcode};
use redsim_predictor::{build_direction, Btb, DirectionPredictor, ReturnAddressStack};

use crate::config::MachineConfig;

/// How the front end fares on one fetched instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Fetch continues sequentially (non-control, or correctly
    /// predicted not-taken).
    Sequential,
    /// Correctly predicted taken with the right target: fetch redirects
    /// with no bubble (but ends the current fetch group).
    TakenPredicted,
    /// Direction right (or unconditional) but the target had to come
    /// from decode: a short front-end bubble.
    TakenBtbMiss,
    /// Mispredicted: fetch stalls until this instruction resolves, then
    /// pays the redirect penalty.
    Mispredict,
}

/// Is this instruction a call (pushes a return address)?
fn is_call(di: &DynInst) -> bool {
    match di.inst.op {
        Opcode::Jal => true,
        Opcode::Jalr => di.inst.rd == IntReg::RA.index() as u8,
        _ => false,
    }
}

/// Is this instruction a return (predicted via the RAS)?
fn is_return(di: &DynInst) -> bool {
    di.inst.op == Opcode::Jr && di.inst.rs1 == IntReg::RA.index() as u8 && di.inst.imm == 0
}

/// Front-end prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontStats {
    /// Conditional branches seen at fetch.
    pub cond_branches: u64,
    /// Conditional direction mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect jumps (including returns) seen.
    pub indirect_jumps: u64,
    /// Indirect target mispredictions.
    pub indirect_mispredicts: u64,
    /// Taken control instructions whose target missed the BTB.
    pub btb_miss_bubbles: u64,
    /// RAS predictions that were correct.
    pub ras_correct: u64,
}

/// The fetch-stage prediction machinery.
pub struct FrontEnd {
    dir: Box<dyn DirectionPredictor>,
    btb: Btb,
    ras: ReturnAddressStack,
    stats: FrontStats,
}

impl std::fmt::Debug for FrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("dir", &self.dir.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FrontEnd {
    /// Builds the front end described by `config`.
    #[must_use]
    pub fn new(config: &MachineConfig) -> Self {
        FrontEnd {
            dir: build_direction(config.direction),
            btb: Btb::new(config.btb),
            ras: ReturnAddressStack::new(config.ras_depth),
            stats: FrontStats::default(),
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &FrontStats {
        &self.stats
    }

    /// Assesses one fetched instruction against the predictors,
    /// speculatively updating the RAS. The trace supplies the actual
    /// outcome; the returned [`FetchOutcome`] tells the fetch engine how
    /// the front end would have steered.
    pub fn assess(&mut self, di: &DynInst) -> FetchOutcome {
        let Some(ctrl) = di.control else {
            return FetchOutcome::Sequential;
        };
        let op = di.inst.op;

        if op.is_branch() {
            self.stats.cond_branches += 1;
            let predicted_taken = self.dir.predict(di.pc);
            if predicted_taken != ctrl.taken {
                self.stats.cond_mispredicts += 1;
                return FetchOutcome::Mispredict;
            }
            if !ctrl.taken {
                return FetchOutcome::Sequential;
            }
            return match self.btb.lookup(di.pc) {
                Some(t) if t == ctrl.target => FetchOutcome::TakenPredicted,
                _ => {
                    // Direct branch: the right target is recoverable at
                    // decode from the instruction's immediate.
                    self.stats.btb_miss_bubbles += 1;
                    FetchOutcome::TakenBtbMiss
                }
            };
        }

        // Unconditional control flow.
        if is_call(di) {
            self.ras.push(di.fallthrough_pc());
        }
        match op {
            Opcode::J | Opcode::Jal => {
                // Direct target, decodable; BTB hit avoids even the
                // decode bubble.
                match self.btb.lookup(di.pc) {
                    Some(t) if t == ctrl.target => FetchOutcome::TakenPredicted,
                    _ => {
                        self.stats.btb_miss_bubbles += 1;
                        FetchOutcome::TakenBtbMiss
                    }
                }
            }
            Opcode::Jr | Opcode::Jalr => {
                self.stats.indirect_jumps += 1;
                if is_return(di) {
                    if self.ras.pop() == Some(ctrl.target) {
                        self.stats.ras_correct += 1;
                        return FetchOutcome::TakenPredicted;
                    }
                    self.stats.indirect_mispredicts += 1;
                    return FetchOutcome::Mispredict;
                }
                match self.btb.lookup(di.pc) {
                    Some(t) if t == ctrl.target => FetchOutcome::TakenPredicted,
                    _ => {
                        self.stats.indirect_mispredicts += 1;
                        FetchOutcome::Mispredict
                    }
                }
            }
            _ => FetchOutcome::Sequential,
        }
    }

    /// Trains the predictors on a resolved control instruction. Called
    /// when the first copy of the instruction resolves in the back end.
    pub fn train(&mut self, di: &DynInst) {
        let Some(ctrl) = di.control else { return };
        if di.inst.op.is_branch() {
            self.dir.update(di.pc, ctrl.taken);
        }
        if ctrl.taken {
            self.btb.update(di.pc, ctrl.target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_isa::trace::ControlOutcome;
    use redsim_isa::Inst;

    fn branch_di(pc: u64, taken: bool, target: u64) -> DynInst {
        DynInst {
            seq: 0,
            pc,
            inst: Inst::branch(
                Opcode::Bne,
                IntReg::new(1),
                IntReg::ZERO,
                (target as i64 - pc as i64) as i32,
            ),
            src1: 1,
            src2: 0,
            result: None,
            ea: None,
            control: Some(ControlOutcome { taken, target }),
            next_pc: if taken { target } else { pc + 8 },
        }
    }

    fn jump_di(op: Opcode, pc: u64, target: u64, rd: u8, rs1: u8) -> DynInst {
        DynInst {
            seq: 0,
            pc,
            inst: Inst {
                op,
                rd,
                rs1,
                rs2: 0,
                imm: 0,
            },
            src1: 0,
            src2: 0,
            result: None,
            ea: None,
            control: Some(ControlOutcome {
                taken: true,
                target,
            }),
            next_pc: target,
        }
    }

    fn fe() -> FrontEnd {
        FrontEnd::new(&MachineConfig::tiny())
    }

    #[test]
    fn untrained_loop_branch_mispredicts_then_learns() {
        let mut f = fe();
        let di = branch_di(0x1000, true, 0x900);
        // Bimodal initializes weakly-not-taken: first sighting of a
        // taken branch mispredicts.
        assert_eq!(f.assess(&di), FetchOutcome::Mispredict);
        f.train(&di);
        f.train(&di);
        // Direction now predicted taken and the BTB knows the target.
        assert_eq!(f.assess(&di), FetchOutcome::TakenPredicted);
        assert_eq!(f.stats().cond_mispredicts, 1);
        assert_eq!(f.stats().cond_branches, 2);
    }

    #[test]
    fn correct_not_taken_is_sequential() {
        let mut f = fe();
        let di = branch_di(0x1000, false, 0x900);
        assert_eq!(f.assess(&di), FetchOutcome::Sequential);
    }

    #[test]
    fn taken_with_cold_btb_is_a_bubble_not_a_mispredict() {
        let mut f = fe();
        let di = branch_di(0x1000, true, 0x900);
        f.train(&di); // train direction only enough to predict taken
        f.train(&di);
        // Make the BTB forget by using a different pc trained elsewhere:
        // fresh front end, direction trained, BTB cold for this pc.
        let mut f2 = fe();
        let d2 = branch_di(0x2000, true, 0x900);
        f2.dir.update(0x2000, true);
        f2.dir.update(0x2000, true);
        assert_eq!(f2.assess(&d2), FetchOutcome::TakenBtbMiss);
        assert_eq!(f2.stats().btb_miss_bubbles, 1);
        let _ = f;
    }

    #[test]
    fn direct_jump_needs_only_btb() {
        let mut f = fe();
        let j = jump_di(Opcode::J, 0x1000, 0x3000, 0, 0);
        assert_eq!(f.assess(&j), FetchOutcome::TakenBtbMiss);
        f.train(&j);
        assert_eq!(f.assess(&j), FetchOutcome::TakenPredicted);
    }

    #[test]
    fn call_return_pair_uses_ras() {
        let mut f = fe();
        let call = jump_di(Opcode::Jal, 0x1000, 0x5000, IntReg::RA.index() as u8, 0);
        f.train(&call);
        assert_eq!(f.assess(&call), FetchOutcome::TakenPredicted);
        // Return to the call's fall-through.
        let ret = jump_di(Opcode::Jr, 0x5000, 0x1008, 0, IntReg::RA.index() as u8);
        assert_eq!(f.assess(&ret), FetchOutcome::TakenPredicted);
        assert_eq!(f.stats().ras_correct, 1);
        // A second return with an empty RAS mispredicts.
        let ret2 = jump_di(Opcode::Jr, 0x5000, 0x9008, 0, IntReg::RA.index() as u8);
        assert_eq!(f.assess(&ret2), FetchOutcome::Mispredict);
        assert_eq!(f.stats().indirect_mispredicts, 1);
    }

    #[test]
    fn indirect_jump_wrong_btb_target_mispredicts() {
        let mut f = fe();
        let j1 = jump_di(Opcode::Jr, 0x1000, 0x3000, 0, 5);
        f.train(&j1);
        // Same pc, different runtime target (e.g. a jump table).
        let j2 = jump_di(Opcode::Jr, 0x1000, 0x4000, 0, 5);
        assert_eq!(f.assess(&j2), FetchOutcome::Mispredict);
        // After retraining, the new target predicts.
        f.train(&j2);
        assert_eq!(f.assess(&j2), FetchOutcome::TakenPredicted);
    }

    #[test]
    fn non_control_is_sequential_and_untracked() {
        let mut f = fe();
        let di = DynInst {
            seq: 0,
            pc: 0x1000,
            inst: Inst::NOP,
            src1: 0,
            src2: 0,
            result: None,
            ea: None,
            control: None,
            next_pc: 0x1008,
        };
        assert_eq!(f.assess(&di), FetchOutcome::Sequential);
        assert_eq!(f.stats().cond_branches, 0);
    }
}
