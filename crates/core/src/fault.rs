//! Transient-fault injection (§3.4's redundancy scenarios).
//!
//! Three injection sites, matching the paper's analysis:
//!
//! * **Functional units** — a bit flip in the result one copy computes.
//!   Caught by the commit-stage pair comparison (scenario *i/ii × a*).
//! * **The IRB array** — a strike on a buffered result. The reuse test
//!   compares *operands*, so the corrupt result flows to commit where
//!   the primary stream's ALU execution exposes it: this is exactly why
//!   the paper argues the IRB needs no dedicated protection.
//! * **The shared forwarding bus** — under
//!   [`ForwardingPolicy::PrimaryToBoth`](crate::ForwardingPolicy) a
//!   corrupted forwarded value feeds *both* streams' consumers
//!   identically (the paper's Figure 6(c)): the copies agree and the
//!   fault escapes, the acknowledged residual vulnerability. Under
//!   [`ForwardingPolicy::PerStream`](crate::ForwardingPolicy) the same
//!   strike hits one stream only and is detected (Figure 6(b)).
//!
//! Beyond the coarse counters in [`FaultStats`], the injector tracks
//! every strike through its full lifecycle as a [`FaultRecord`]: the
//! [`FaultSite`], the injection cycle, and a terminal [`FaultOutcome`]
//! assigned by the pipeline — `Detected` at a commit-stage pair
//! mismatch (with detection latency and recovery cost), `Masked` when
//! the corruption never reached architectural state,
//! `SilentCorruption` when a wrong value committed unchecked, or
//! `Hang` when the run's watchdog expired first. The aggregate view is
//! the [`FaultLifecycle`] block of
//! [`SimStats`](crate::SimStats).

use std::error::Error;
use std::fmt;

use redsim_util::Rng;

/// Fault-injection configuration. All rates are per-event
/// probabilities; zero disables a site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that one copy's functional-unit execution is struck.
    pub fu_rate: f64,
    /// Probability that a result broadcast is struck on the bus.
    pub forward_rate: f64,
    /// Per-cycle probability of a strike on a random IRB slot.
    pub irb_rate: f64,
    /// RNG seed, so injections replay deterministically.
    pub seed: u64,
}

/// A rejected [`FaultConfig`]: which rate field was invalid and why.
///
/// Rates are probabilities; anything outside `[0, 1]` (or not a number
/// at all) would silently skew an experiment or never fire, so
/// construction via [`FaultConfig::new`] refuses it up front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultConfigError {
    /// The rate is NaN or infinite.
    NotFinite {
        /// Name of the offending rate field.
        field: &'static str,
    },
    /// The rate is below zero.
    Negative {
        /// Name of the offending rate field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The rate exceeds 1.0 (probabilities are capped at certainty).
    AboveOne {
        /// Name of the offending rate field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::NotFinite { field } => {
                write!(f, "fault rate `{field}` must be a finite number")
            }
            FaultConfigError::Negative { field, value } => {
                write!(f, "fault rate `{field}` must be >= 0 (got {value})")
            }
            FaultConfigError::AboveOne { field, value } => {
                write!(
                    f,
                    "fault rate `{field}` is a probability and must be <= 1 (got {value})"
                )
            }
        }
    }
}

impl Error for FaultConfigError {}

impl FaultConfig {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            fu_rate: 0.0,
            forward_rate: 0.0,
            irb_rate: 0.0,
            seed: 0,
        }
    }

    /// Creates a validated configuration: every rate must be a finite
    /// probability in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns the first offending field as a [`FaultConfigError`].
    pub fn new(
        fu_rate: f64,
        forward_rate: f64,
        irb_rate: f64,
        seed: u64,
    ) -> Result<Self, FaultConfigError> {
        let c = FaultConfig {
            fu_rate,
            forward_rate,
            irb_rate,
            seed,
        };
        c.validate()?;
        Ok(c)
    }

    /// Checks every rate field (see [`FaultConfig::new`]).
    ///
    /// # Errors
    ///
    /// Returns the first offending field as a [`FaultConfigError`].
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (field, value) in [
            ("fu_rate", self.fu_rate),
            ("forward_rate", self.forward_rate),
            ("irb_rate", self.irb_rate),
        ] {
            if !value.is_finite() {
                return Err(FaultConfigError::NotFinite { field });
            }
            if value < 0.0 {
                return Err(FaultConfigError::Negative { field, value });
            }
            if value > 1.0 {
                return Err(FaultConfigError::AboveOne { field, value });
            }
        }
        Ok(())
    }

    /// `true` if any site can fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.fu_rate > 0.0 || self.forward_rate > 0.0 || self.irb_rate > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Detection accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults injected into functional-unit results.
    pub injected_fu: u64,
    /// Faults injected onto the forwarding bus.
    pub injected_forward: u64,
    /// Faults injected into IRB slots (valid entries struck).
    pub injected_irb: u64,
    /// Pair mismatches detected at commit (each triggers a rewind).
    pub detected: u64,
    /// Commits where a tainted pair nonetheless matched — the fault
    /// escaped the sphere of replication.
    pub escaped: u64,
    /// Commits of tainted instructions in SIE (no checking exists):
    /// silent data corruption.
    pub silent_sie: u64,
}

impl FaultStats {
    /// Fraction of commit-visible faults that were detected.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let seen = self.detected + self.escaped + self.silent_sie;
        if seen == 0 {
            0.0
        } else {
            self.detected as f64 / seen as f64
        }
    }
}

/// Where a fault was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A functional-unit result bit flip.
    Fu,
    /// A forwarding-bus strike on a result broadcast.
    Forward,
    /// A strike on a valid IRB array slot.
    Irb,
}

impl FaultSite {
    /// Stable lowercase name (manifest / JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Fu => "fu",
            FaultSite::Forward => "forward",
            FaultSite::Irb => "irb",
        }
    }
}

/// The terminal state of an injected fault — exactly one per fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// The commit-stage pair comparison caught the corruption and the
    /// pair was rewound.
    Detected,
    /// The corruption never changed an architectural value: the struck
    /// state was overwritten, never consumed, or cancelled out before
    /// commit.
    Masked,
    /// A wrong architectural value committed with no detection — the
    /// checker matched (or no checker exists, as in SIE).
    SilentCorruption,
    /// The run's watchdog deadline expired while the fault was still
    /// unresolved (e.g. a rewind livelock).
    Hang,
}

impl FaultOutcome {
    /// Stable lowercase name (manifest / JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultOutcome::Detected => "detected",
            FaultOutcome::Masked => "masked",
            FaultOutcome::SilentCorruption => "silent",
            FaultOutcome::Hang => "hang",
        }
    }
}

/// One injected fault's lifecycle record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Injection site.
    pub site: FaultSite,
    /// Cycle the strike happened.
    pub injected_at: u64,
    /// Terminal outcome; `None` while still in flight (resolved to
    /// [`FaultOutcome::Masked`] or [`FaultOutcome::Hang`] when the run
    /// ends).
    pub outcome: Option<FaultOutcome>,
    /// Cycle the outcome was assigned.
    pub resolved_at: u64,
    /// In-flight RUU entries behind the detected pair at rewind time —
    /// the window of speculative work exposed to the recovery.
    pub squash_depth: u64,
    /// Front-end re-fetch penalty charged on detection, in cycles.
    pub refetch_penalty: u64,
}

impl FaultRecord {
    /// Strike-to-resolution latency in cycles (detection latency for
    /// detected faults).
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.resolved_at.saturating_sub(self.injected_at)
    }
}

/// Number of log2 detection-latency buckets in [`FaultLifecycle`].
pub const LATENCY_BUCKETS: usize = 16;

/// Aggregate per-fault lifecycle statistics: every injected fault lands
/// in exactly one outcome counter, so
/// `injected == detected + masked + silent + hung` always holds (the
/// conservation invariant the tests enforce generatively).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLifecycle {
    /// Lifecycle records created (all sites).
    pub injected: u64,
    /// Faults caught by the commit-stage comparison.
    pub detected: u64,
    /// Faults that never corrupted architectural state.
    pub masked: u64,
    /// Faults that committed a wrong value silently.
    pub silent: u64,
    /// Faults unresolved when the watchdog expired.
    pub hung: u64,
    /// Sum of detection latencies over detected faults.
    pub detection_latency_sum: u64,
    /// Largest single detection latency.
    pub detection_latency_max: u64,
    /// Detection-latency histogram: bucket 0 is latency 0, bucket `i`
    /// holds latencies in `[2^(i-1), 2^i)`, and the last bucket is
    /// open-ended.
    pub latency_histogram: [u64; LATENCY_BUCKETS],
    /// Total in-flight RUU entries exposed behind detected pairs
    /// (recovery cost).
    pub squash_depth_sum: u64,
    /// Total front-end re-fetch cycles charged by detections.
    pub refetch_penalty_sum: u64,
}

impl FaultLifecycle {
    /// The histogram bucket a detection latency falls into.
    #[must_use]
    pub fn latency_bucket(latency: u64) -> usize {
        if latency == 0 {
            0
        } else {
            ((u64::BITS - latency.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// `injected == detected + masked + silent + hung` — every fault
    /// has exactly one terminal outcome.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        self.injected == self.detected + self.masked + self.silent + self.hung
    }

    /// Mean detection latency over detected faults.
    #[must_use]
    pub fn mean_detection_latency(&self) -> f64 {
        if self.detected == 0 {
            0.0
        } else {
            self.detection_latency_sum as f64 / self.detected as f64
        }
    }

    /// Fraction of architecturally visible faults (detected + silent)
    /// that were detected — the coverage a redundancy scheme claims.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let visible = self.detected + self.silent;
        if visible == 0 {
            0.0
        } else {
            self.detected as f64 / visible as f64
        }
    }

    /// AVF-style vulnerability: the fraction of injected faults that
    /// reached architectural state at all (detected or silent).
    #[must_use]
    pub fn avf(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            (self.detected + self.silent) as f64 / self.injected as f64
        }
    }
}

/// The injector: a deterministic RNG deciding where lightning strikes,
/// plus the per-fault lifecycle ledger.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: Rng,
    stats: FaultStats,
    records: Vec<FaultRecord>,
}

impl FaultInjector {
    /// Creates an injector.
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            rng: Rng::new(config.seed),
            config,
            stats: FaultStats::default(),
            records: Vec::new(),
        }
    }

    /// Whether any injection site is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Mutable statistics (the commit stage records detections).
    pub fn stats_mut(&mut self) -> &mut FaultStats {
        &mut self.stats
    }

    /// The per-fault lifecycle ledger, in injection order (a fault's id
    /// is its index here).
    #[must_use]
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    fn record(&mut self, site: FaultSite, cycle: u64) -> u32 {
        let id = u32::try_from(self.records.len()).expect("fewer than 2^32 faults");
        self.records.push(FaultRecord {
            site,
            injected_at: cycle,
            outcome: None,
            resolved_at: 0,
            squash_depth: 0,
            refetch_penalty: 0,
        });
        id
    }

    /// Possibly corrupts a functional-unit result at `cycle`. Returns
    /// the (maybe flipped) bits and the fault id if one was injected.
    pub fn strike_fu(&mut self, bits: u64, cycle: u64) -> (u64, Option<u32>) {
        if self.config.fu_rate > 0.0 && self.rng.chance(self.config.fu_rate) {
            self.stats.injected_fu += 1;
            let bit = self.rng.below(64);
            let id = self.record(FaultSite::Fu, cycle);
            (bits ^ 1 << bit, Some(id))
        } else {
            (bits, None)
        }
    }

    /// Decides whether this result broadcast is struck on the bus at
    /// `cycle`; returns the XOR mask to apply to every consumer's view
    /// plus the fault id (`None` if no strike).
    pub fn strike_forward(&mut self, cycle: u64) -> Option<(u64, u32)> {
        if self.config.forward_rate > 0.0 && self.rng.chance(self.config.forward_rate) {
            self.stats.injected_forward += 1;
            let mask = 1 << self.rng.below(64);
            let id = self.record(FaultSite::Forward, cycle);
            Some((mask, id))
        } else {
            None
        }
    }

    /// Rolls the per-cycle IRB strike; returns the slot and bit to flip
    /// if one fires. The caller flips it (and reports back whether a
    /// valid entry was struck via [`FaultInjector::record_irb_strike`]).
    pub fn roll_irb_strike(&mut self, num_slots: usize) -> Option<(usize, u32)> {
        if self.config.irb_rate > 0.0 && self.rng.chance(self.config.irb_rate) {
            let slot = self.rng.index(num_slots);
            let bit = self.rng.below(64) as u32;
            Some((slot, bit))
        } else {
            None
        }
    }

    /// Records that an IRB strike landed on a valid entry at `cycle`;
    /// returns the fault id.
    pub fn record_irb_strike(&mut self, cycle: u64) -> u32 {
        self.stats.injected_irb += 1;
        self.record(FaultSite::Irb, cycle)
    }

    /// Marks fault `id` detected at `cycle`, with its recovery cost.
    /// The first terminal outcome wins; later calls are no-ops, so a
    /// fault reused or forwarded into several copies still resolves
    /// exactly once.
    pub fn resolve_detected(&mut self, id: u32, cycle: u64, squash_depth: u64, refetch: u64) {
        let r = &mut self.records[id as usize];
        if r.outcome.is_none() {
            r.outcome = Some(FaultOutcome::Detected);
            r.resolved_at = cycle;
            r.squash_depth = squash_depth;
            r.refetch_penalty = refetch;
        }
    }

    /// Marks fault `id` as silent corruption at `cycle` (first terminal
    /// outcome wins).
    pub fn resolve_silent(&mut self, id: u32, cycle: u64) {
        let r = &mut self.records[id as usize];
        if r.outcome.is_none() {
            r.outcome = Some(FaultOutcome::SilentCorruption);
            r.resolved_at = cycle;
        }
    }

    /// Assigns `outcome` to every still-pending fault (end of run:
    /// [`FaultOutcome::Masked`]; watchdog expiry: [`FaultOutcome::Hang`]).
    pub fn resolve_all_pending(&mut self, outcome: FaultOutcome, cycle: u64) {
        for r in &mut self.records {
            if r.outcome.is_none() {
                r.outcome = Some(outcome);
                r.resolved_at = cycle;
            }
        }
    }

    /// Aggregates the ledger into the [`FaultLifecycle`] stats block.
    ///
    /// # Panics
    ///
    /// Panics if any fault is still pending — the pipeline must call
    /// [`FaultInjector::resolve_all_pending`] first.
    #[must_use]
    pub fn lifecycle(&self) -> FaultLifecycle {
        let mut l = FaultLifecycle::default();
        for r in &self.records {
            l.injected += 1;
            match r.outcome.expect("every fault resolved before aggregation") {
                FaultOutcome::Detected => {
                    l.detected += 1;
                    let lat = r.latency();
                    l.detection_latency_sum += lat;
                    l.detection_latency_max = l.detection_latency_max.max(lat);
                    l.latency_histogram[FaultLifecycle::latency_bucket(lat)] += 1;
                    l.squash_depth_sum += r.squash_depth;
                    l.refetch_penalty_sum += r.refetch_penalty;
                }
                FaultOutcome::Masked => l.masked += 1,
                FaultOutcome::SilentCorruption => l.silent += 1,
                FaultOutcome::Hang => l.hung += 1,
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        assert!(!inj.enabled());
        for v in 0..1000u64 {
            let (bits, hit) = inj.strike_fu(v, v);
            assert_eq!(bits, v);
            assert!(hit.is_none());
            assert!(inj.strike_forward(v).is_none());
            assert!(inj.roll_irb_strike(64).is_none());
        }
        assert!(inj.records().is_empty());
    }

    #[test]
    fn always_on_fu_fault_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(FaultConfig {
            fu_rate: 1.0,
            ..FaultConfig::none()
        });
        for v in [0u64, u64::MAX, 0xdead_beef] {
            let (bits, hit) = inj.strike_fu(v, 0);
            assert!(hit.is_some());
            assert_eq!((bits ^ v).count_ones(), 1);
        }
        assert_eq!(inj.stats().injected_fu, 3);
        assert_eq!(inj.records().len(), 3);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultConfig {
                fu_rate: 0.5,
                forward_rate: 0.5,
                irb_rate: 0.5,
                seed,
            });
            let mut log = Vec::new();
            for v in 0..100u64 {
                log.push(inj.strike_fu(v, v).0);
                log.push(inj.strike_forward(v).map_or(0, |(m, _)| m));
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn strike_sites_are_pinned_for_a_fixed_seed() {
        // Pins the exact injection sites produced by seed 0xFA_0001. If
        // this fails, the PRNG (or how the injector draws from it)
        // changed, and every published fault-injection figure shifts.
        let mut inj = FaultInjector::new(FaultConfig {
            fu_rate: 1.0,
            irb_rate: 1.0,
            forward_rate: 1.0,
            seed: 0xFA_0001,
        });
        let fu: Vec<u64> = (0..4).map(|_| inj.strike_fu(0, 0).0).collect();
        let fwd: Vec<u64> = (0..3)
            .map(|_| inj.strike_forward(0).expect("rate 1.0 fires").0)
            .collect();
        let irb: Vec<(usize, u32)> = (0..3).map(|_| inj.roll_irb_strike(1024).unwrap()).collect();
        assert_eq!(fu, [1 << 12, 1 << 60, 1 << 37, 1 << 28]);
        assert_eq!(fwd, [1 << 57, 1 << 54, 1 << 31]);
        assert_eq!(irb, [(653, 28), (1002, 44), (842, 48)]);
        assert_eq!(inj.stats().injected_fu, 4);
        assert_eq!(inj.stats().injected_forward, 3);
    }

    #[test]
    fn coverage_math() {
        let s = FaultStats {
            detected: 9,
            escaped: 1,
            ..FaultStats::default()
        };
        assert!((s.coverage() - 0.9).abs() < 1e-12);
        assert_eq!(FaultStats::default().coverage(), 0.0);
    }

    #[test]
    fn forward_strike_mask_is_single_bit_or_zero() {
        let mut inj = FaultInjector::new(FaultConfig {
            forward_rate: 1.0,
            ..FaultConfig::none()
        });
        let (m, _) = inj.strike_forward(0).expect("rate 1.0 fires");
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn config_validation_rejects_bad_rates() {
        assert!(FaultConfig::new(0.5, 0.0, 1.0, 1).is_ok());
        assert_eq!(
            FaultConfig::new(f64::NAN, 0.0, 0.0, 0),
            Err(FaultConfigError::NotFinite { field: "fu_rate" })
        );
        assert_eq!(
            FaultConfig::new(0.0, f64::INFINITY, 0.0, 0),
            Err(FaultConfigError::NotFinite {
                field: "forward_rate"
            })
        );
        assert_eq!(
            FaultConfig::new(0.0, -0.1, 0.0, 0),
            Err(FaultConfigError::Negative {
                field: "forward_rate",
                value: -0.1
            })
        );
        assert_eq!(
            FaultConfig::new(0.0, 0.0, 1.5, 0),
            Err(FaultConfigError::AboveOne {
                field: "irb_rate",
                value: 1.5
            })
        );
        let msg = FaultConfig::new(2.0, 0.0, 0.0, 0).unwrap_err().to_string();
        assert!(msg.contains("fu_rate") && msg.contains('2'), "{msg}");
    }

    #[test]
    fn lifecycle_first_terminal_outcome_wins() {
        let mut inj = FaultInjector::new(FaultConfig {
            fu_rate: 1.0,
            ..FaultConfig::none()
        });
        let (_, id) = inj.strike_fu(0, 10);
        let id = id.expect("rate 1.0 fires");
        inj.resolve_detected(id, 25, 6, 8);
        inj.resolve_silent(id, 30); // loses: already detected
        let (_, id2) = inj.strike_fu(0, 12);
        inj.resolve_silent(id2.unwrap(), 40);
        let (_, _pending) = inj.strike_fu(0, 13);
        inj.resolve_all_pending(FaultOutcome::Masked, 50);

        let l = inj.lifecycle();
        assert_eq!(
            (l.injected, l.detected, l.masked, l.silent, l.hung),
            (3, 1, 1, 1, 0)
        );
        assert!(l.conservation_holds());
        assert_eq!(l.detection_latency_sum, 15);
        assert_eq!(l.detection_latency_max, 15);
        assert_eq!(l.squash_depth_sum, 6);
        assert_eq!(l.refetch_penalty_sum, 8);
        assert_eq!(l.latency_histogram[FaultLifecycle::latency_bucket(15)], 1);
        assert!((l.mean_detection_latency() - 15.0).abs() < 1e-12);
        assert!((l.coverage() - 0.5).abs() < 1e-12);
        assert!((l.avf() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(FaultLifecycle::latency_bucket(0), 0);
        assert_eq!(FaultLifecycle::latency_bucket(1), 1);
        assert_eq!(FaultLifecycle::latency_bucket(2), 2);
        assert_eq!(FaultLifecycle::latency_bucket(3), 2);
        assert_eq!(FaultLifecycle::latency_bucket(4), 3);
        assert_eq!(FaultLifecycle::latency_bucket(1 << 20), LATENCY_BUCKETS - 1);
        assert_eq!(
            FaultLifecycle::latency_bucket(u64::MAX),
            LATENCY_BUCKETS - 1
        );
    }

    #[test]
    fn pending_faults_panic_if_aggregated_unresolved() {
        let mut inj = FaultInjector::new(FaultConfig {
            fu_rate: 1.0,
            ..FaultConfig::none()
        });
        let _ = inj.strike_fu(0, 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.lifecycle()));
        assert!(r.is_err(), "unresolved fault must not aggregate silently");
    }
}
