//! Transient-fault injection (§3.4's redundancy scenarios).
//!
//! Three injection sites, matching the paper's analysis:
//!
//! * **Functional units** — a bit flip in the result one copy computes.
//!   Caught by the commit-stage pair comparison (scenario *i/ii × a*).
//! * **The IRB array** — a strike on a buffered result. The reuse test
//!   compares *operands*, so the corrupt result flows to commit where
//!   the primary stream's ALU execution exposes it: this is exactly why
//!   the paper argues the IRB needs no dedicated protection.
//! * **The shared forwarding bus** — under
//!   [`ForwardingPolicy::PrimaryToBoth`](crate::ForwardingPolicy) a
//!   corrupted forwarded value feeds *both* streams' consumers
//!   identically (the paper's Figure 6(c)): the copies agree and the
//!   fault escapes, the acknowledged residual vulnerability. Under
//!   [`ForwardingPolicy::PerStream`](crate::ForwardingPolicy) the same
//!   strike hits one stream only and is detected (Figure 6(b)).

use redsim_util::Rng;

/// Fault-injection configuration. All rates are per-event
/// probabilities; zero disables a site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that one copy's functional-unit execution is struck.
    pub fu_rate: f64,
    /// Probability that a result broadcast is struck on the bus.
    pub forward_rate: f64,
    /// Per-cycle probability of a strike on a random IRB slot.
    pub irb_rate: f64,
    /// RNG seed, so injections replay deterministically.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            fu_rate: 0.0,
            forward_rate: 0.0,
            irb_rate: 0.0,
            seed: 0,
        }
    }

    /// `true` if any site can fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.fu_rate > 0.0 || self.forward_rate > 0.0 || self.irb_rate > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Detection accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults injected into functional-unit results.
    pub injected_fu: u64,
    /// Faults injected onto the forwarding bus.
    pub injected_forward: u64,
    /// Faults injected into IRB slots (valid entries struck).
    pub injected_irb: u64,
    /// Pair mismatches detected at commit (each triggers a rewind).
    pub detected: u64,
    /// Commits where a tainted pair nonetheless matched — the fault
    /// escaped the sphere of replication.
    pub escaped: u64,
    /// Commits of tainted instructions in SIE (no checking exists):
    /// silent data corruption.
    pub silent_sie: u64,
}

impl FaultStats {
    /// Fraction of commit-visible faults that were detected.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let seen = self.detected + self.escaped + self.silent_sie;
        if seen == 0 {
            0.0
        } else {
            self.detected as f64 / seen as f64
        }
    }
}

/// The injector: a deterministic RNG deciding where lightning strikes.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: Rng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector.
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            rng: Rng::new(config.seed),
            config,
            stats: FaultStats::default(),
        }
    }

    /// Whether any injection site is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Mutable statistics (the commit stage records detections).
    pub fn stats_mut(&mut self) -> &mut FaultStats {
        &mut self.stats
    }

    /// Possibly corrupts a functional-unit result. Returns the (maybe
    /// flipped) bits and whether a fault was injected.
    pub fn strike_fu(&mut self, bits: u64) -> (u64, bool) {
        if self.config.fu_rate > 0.0 && self.rng.chance(self.config.fu_rate) {
            self.stats.injected_fu += 1;
            let bit = self.rng.below(64);
            (bits ^ 1 << bit, true)
        } else {
            (bits, false)
        }
    }

    /// Decides whether this result broadcast is struck on the bus;
    /// returns the XOR mask to apply to every consumer's view (zero if
    /// no strike).
    pub fn strike_forward(&mut self) -> u64 {
        if self.config.forward_rate > 0.0 && self.rng.chance(self.config.forward_rate) {
            self.stats.injected_forward += 1;
            1 << self.rng.below(64)
        } else {
            0
        }
    }

    /// Rolls the per-cycle IRB strike; returns the slot and bit to flip
    /// if one fires. The caller flips it (and reports back whether a
    /// valid entry was struck via [`FaultInjector::record_irb_strike`]).
    pub fn roll_irb_strike(&mut self, num_slots: usize) -> Option<(usize, u32)> {
        if self.config.irb_rate > 0.0 && self.rng.chance(self.config.irb_rate) {
            let slot = self.rng.index(num_slots);
            let bit = self.rng.below(64) as u32;
            Some((slot, bit))
        } else {
            None
        }
    }

    /// Records that an IRB strike landed on a valid entry.
    pub fn record_irb_strike(&mut self) {
        self.stats.injected_irb += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        assert!(!inj.enabled());
        for v in 0..1000u64 {
            let (bits, hit) = inj.strike_fu(v);
            assert_eq!(bits, v);
            assert!(!hit);
            assert_eq!(inj.strike_forward(), 0);
            assert!(inj.roll_irb_strike(64).is_none());
        }
    }

    #[test]
    fn always_on_fu_fault_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(FaultConfig {
            fu_rate: 1.0,
            ..FaultConfig::none()
        });
        for v in [0u64, u64::MAX, 0xdead_beef] {
            let (bits, hit) = inj.strike_fu(v);
            assert!(hit);
            assert_eq!((bits ^ v).count_ones(), 1);
        }
        assert_eq!(inj.stats().injected_fu, 3);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultConfig {
                fu_rate: 0.5,
                forward_rate: 0.5,
                irb_rate: 0.5,
                seed,
            });
            let mut log = Vec::new();
            for v in 0..100u64 {
                log.push(inj.strike_fu(v).0);
                log.push(inj.strike_forward());
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn strike_sites_are_pinned_for_a_fixed_seed() {
        // Pins the exact injection sites produced by seed 0xFA_0001. If
        // this fails, the PRNG (or how the injector draws from it)
        // changed, and every published fault-injection figure shifts.
        let mut inj = FaultInjector::new(FaultConfig {
            fu_rate: 1.0,
            irb_rate: 1.0,
            forward_rate: 1.0,
            seed: 0xFA_0001,
        });
        let fu: Vec<u64> = (0..4).map(|_| inj.strike_fu(0).0).collect();
        let fwd: Vec<u64> = (0..3).map(|_| inj.strike_forward()).collect();
        let irb: Vec<(usize, u32)> = (0..3).map(|_| inj.roll_irb_strike(1024).unwrap()).collect();
        assert_eq!(fu, [1 << 12, 1 << 60, 1 << 37, 1 << 28]);
        assert_eq!(fwd, [1 << 57, 1 << 54, 1 << 31]);
        assert_eq!(irb, [(653, 28), (1002, 44), (842, 48)]);
        assert_eq!(inj.stats().injected_fu, 4);
        assert_eq!(inj.stats().injected_forward, 3);
    }

    #[test]
    fn coverage_math() {
        let s = FaultStats {
            detected: 9,
            escaped: 1,
            ..FaultStats::default()
        };
        assert!((s.coverage() - 0.9).abs() < 1e-12);
        assert_eq!(FaultStats::default().coverage(), 0.0);
    }

    #[test]
    fn forward_strike_mask_is_single_bit_or_zero() {
        let mut inj = FaultInjector::new(FaultConfig {
            forward_rate: 1.0,
            ..FaultConfig::none()
        });
        let m = inj.strike_forward();
        assert_eq!(m.count_ones(), 1);
    }
}
