//! The IRB as integrated into the pipeline: port arbitration + the
//! 3-stage pipelined lookup race of §3.2.

use redsim_irb::{AttributionCollector, IrbConfig, IrbEntry, PortArbiter, ReuseBuffer};
use redsim_isa::trace::DynInst;
use redsim_isa::OpClass;

use crate::ruu::ReuseState;

/// Pipeline-facing statistics beyond the buffer's own counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IrbUnitStats {
    /// Lookups that could not obtain a read port at fetch.
    pub lookups_port_starved: u64,
    /// Commit-time inserts dropped for lack of a write port.
    pub inserts_port_starved: u64,
    /// Reuse tests that passed (functional units bypassed).
    pub reuse_passed: u64,
    /// Reuse tests that failed (operands differed).
    pub reuse_failed: u64,
}

/// The IRB with its ports, as the fetch and commit stages see it.
#[derive(Debug)]
pub struct IrbUnit {
    buffer: ReuseBuffer,
    arbiter: PortArbiter,
    lookup_stages: u64,
    stats: IrbUnitStats,
    /// Reuse-attribution collector; `None` (never allocated) unless the
    /// run enabled attribution, keeping the default path pure.
    attr: Option<Box<AttributionCollector>>,
}

/// Attribution class id for `di` (index into
/// [`redsim_irb::REUSE_CLASS_NAMES`]): `alu`, `mul`, `div`, `mem`,
/// `branch`. Sys ops map to `alu` but are never reuse-eligible, so they
/// are never counted.
#[must_use]
pub fn reuse_class(di: &DynInst) -> usize {
    match di.class() {
        OpClass::IntAlu | OpClass::FpAdd | OpClass::Sys => 0,
        OpClass::IntMul | OpClass::FpMul => 1,
        OpClass::IntDiv | OpClass::FpDiv | OpClass::FpSqrt => 2,
        OpClass::Load | OpClass::Store => 3,
        OpClass::Branch | OpClass::Jump => 4,
    }
}

/// Is this instruction a candidate for instruction reuse?
///
/// Per §3.2: integer and FP ALU operations, branch target calculation,
/// and address calculation for loads/stores. System operations and nops
/// have nothing to reuse.
#[must_use]
pub fn reuse_eligible(di: &DynInst) -> bool {
    match di.class() {
        OpClass::IntAlu
        | OpClass::IntMul
        | OpClass::IntDiv
        | OpClass::FpAdd
        | OpClass::FpMul
        | OpClass::FpDiv
        | OpClass::FpSqrt => di.inst.op != redsim_isa::Opcode::Nop && di.result.is_some(),
        OpClass::Load | OpClass::Store | OpClass::Branch | OpClass::Jump => true,
        OpClass::Sys => false,
    }
}

/// The value an IRB entry buffers for `di`: the register result for ALU
/// ops, the effective address for memory ops, the encoded outcome for
/// control ops.
#[must_use]
pub fn reuse_output(di: &DynInst) -> u64 {
    match di.class() {
        OpClass::Load | OpClass::Store => di.ea.expect("memory op has an ea"),
        OpClass::Branch | OpClass::Jump => {
            let c = di.control.expect("control op has an outcome");
            c.target | u64::from(c.taken) << 63
        }
        _ => di.result.expect("eligible ALU op has a result"),
    }
}

impl IrbUnit {
    /// Creates the unit.
    ///
    /// # Panics
    ///
    /// Panics on an invalid IRB configuration.
    #[must_use]
    pub fn new(config: IrbConfig) -> Self {
        config.validate();
        IrbUnit {
            buffer: ReuseBuffer::new(config),
            arbiter: PortArbiter::new(config.ports),
            lookup_stages: u64::from(config.lookup_stages),
            stats: IrbUnitStats::default(),
            attr: None,
        }
    }

    /// Turns on reuse attribution (allocates the collector). Off by
    /// default; when off, no attribution code allocates or observes.
    pub fn enable_attribution(&mut self) {
        self.attr = Some(Box::new(AttributionCollector::new()));
    }

    /// The live attribution collector, if enabled.
    #[must_use]
    pub fn attribution(&self) -> Option<&AttributionCollector> {
        self.attr.as_deref()
    }

    /// Observes every instruction leaving fetch, keeping the loop-region
    /// tracker current: a taken control transfer to a lower address is a
    /// backedge, naming the loop by its target (head) PC.
    ///
    /// Called unconditionally from the fetch stage (one predictable
    /// branch when attribution is off), *before* the instruction's own
    /// lookup starts, so a backedge's lookup is charged to its own loop.
    pub fn note_fetched(&mut self, di: &DynInst) {
        if let Some(attr) = &mut self.attr {
            if let Some(c) = di.control {
                if c.taken && c.target < di.pc {
                    attr.enter_loop(c.target);
                }
            }
        }
    }

    /// Resets per-cycle port availability. Call once per cycle.
    pub fn begin_cycle(&mut self) {
        self.arbiter.begin_cycle();
    }

    /// Initiates the fetch-parallel lookup for `di`, returning the
    /// entry's starting [`ReuseState`] and the cycle the lookup result
    /// becomes available to the issue window.
    pub fn start_lookup(&mut self, di: &DynInst, cycle: u64) -> (ReuseState, u64) {
        if !reuse_eligible(di) {
            return (ReuseState::NotEligible, cycle);
        }
        if !self.arbiter.try_read() {
            self.stats.lookups_port_starved += 1;
            return (ReuseState::PortStarved, cycle);
        }
        // Attribution mirrors the buffer's own counters exactly: one
        // `record_lookup` per granted probe, one `record_hit` per tag
        // match, so per-class sums equal `IrbStats` totals.
        if let Some(attr) = &mut self.attr {
            attr.record_lookup(reuse_class(di), di.pc);
        }
        let done = cycle + self.lookup_stages;
        match self.buffer.lookup(di.pc) {
            Some(entry) => {
                if let Some(attr) = &mut self.attr {
                    attr.record_hit(reuse_class(di), di.pc);
                }
                (ReuseState::Hit(entry), done)
            }
            None => (ReuseState::PcMiss, done),
        }
    }

    /// Evaluates the reuse test for a PC-hit entry against the operand
    /// values the primary stream forwarded (§3.3's `Rdy2` comparators).
    pub fn reuse_test(&mut self, hit: &IrbEntry, di: &DynInst) -> bool {
        let pass = hit.op1 == di.src1 && hit.op2 == di.src2;
        if pass {
            self.stats.reuse_passed += 1;
        } else {
            self.stats.reuse_failed += 1;
        }
        if let Some(attr) = &mut self.attr {
            attr.record_test(reuse_class(di), di.pc, pass);
        }
        pass
    }

    /// Commit-time update: buffers the execution of `di` if a write
    /// port is free this cycle. Returns `true` if the insert happened.
    pub fn try_insert(&mut self, di: &DynInst) -> bool {
        if !reuse_eligible(di) {
            return false;
        }
        if !self.arbiter.try_write() {
            self.stats.inserts_port_starved += 1;
            return false;
        }
        let names = operand_names(di);
        self.buffer.insert_named(
            IrbEntry {
                pc: di.pc,
                op1: di.src1,
                op2: di.src2,
                result: reuse_output(di),
            },
            names,
        );
        true
    }

    /// Name-based invalidation for a committed register write.
    pub fn on_register_write(&mut self, di: &DynInst) {
        if let Some(r) = di.inst.int_dest() {
            self.buffer.invalidate_name(r.index() as u8);
        }
        if let Some(f) = di.inst.fp_dest() {
            self.buffer.invalidate_name(32 + f.index() as u8);
        }
    }

    /// The underlying buffer (stats, fault injection).
    #[must_use]
    pub fn buffer(&self) -> &ReuseBuffer {
        &self.buffer
    }

    /// Mutable access to the underlying buffer (fault injection).
    pub fn buffer_mut(&mut self) -> &mut ReuseBuffer {
        &mut self.buffer
    }

    /// Pipeline-level statistics.
    #[must_use]
    pub fn stats(&self) -> &IrbUnitStats {
        &self.stats
    }
}

/// Register names `di` reads, in the IRB's name encoding (int = index,
/// fp = 32 + index). Immediate operands are `None`.
fn operand_names(di: &DynInst) -> [Option<u8>; 2] {
    let ints = di.inst.int_sources();
    let fps = di.inst.fp_sources();
    let mut names = [None, None];
    let mut n = 0;
    for r in ints {
        if n < 2 {
            names[n] = Some(r.index() as u8);
            n += 1;
        }
    }
    for f in fps {
        if n < 2 {
            names[n] = Some(32 + f.index() as u8);
            n += 1;
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_isa::trace::ControlOutcome;
    use redsim_isa::{Inst, IntReg, Opcode};

    fn alu_di(pc: u64, a: u64, b: u64, r: u64) -> DynInst {
        DynInst {
            seq: 0,
            pc,
            inst: Inst::rrr(Opcode::Add, IntReg::new(3), IntReg::new(1), IntReg::new(2)),
            src1: a,
            src2: b,
            result: Some(r),
            ea: None,
            control: None,
            next_pc: pc + 8,
        }
    }

    fn unit() -> IrbUnit {
        IrbUnit::new(IrbConfig {
            entries: 64,
            ..IrbConfig::paper_baseline()
        })
    }

    #[test]
    fn lookup_latency_is_three_stages() {
        let mut u = unit();
        u.begin_cycle();
        let (state, done) = u.start_lookup(&alu_di(0x1000, 1, 2, 3), 10);
        assert_eq!(state, ReuseState::PcMiss);
        assert_eq!(done, 13);
    }

    #[test]
    fn insert_then_hit_then_reuse_test() {
        let mut u = unit();
        u.begin_cycle();
        let d = alu_di(0x1000, 5, 6, 11);
        assert!(u.try_insert(&d));
        let (state, _) = u.start_lookup(&d, 1);
        let ReuseState::Hit(entry) = state else {
            panic!("expected hit, got {state:?}")
        };
        assert!(u.reuse_test(&entry, &d), "same operands pass");
        let d2 = alu_di(0x1000, 5, 7, 12);
        assert!(!u.reuse_test(&entry, &d2), "changed operand fails");
        assert_eq!(u.stats().reuse_passed, 1);
        assert_eq!(u.stats().reuse_failed, 1);
    }

    #[test]
    fn port_starvation_counts_and_denies() {
        let mut u = unit();
        u.begin_cycle();
        let d = alu_di(0x1000, 1, 1, 2);
        // Paper ports: 6 effective reads per cycle.
        for _ in 0..6 {
            let (s, _) = u.start_lookup(&d, 0);
            assert_ne!(s, ReuseState::PortStarved);
        }
        let (s, _) = u.start_lookup(&d, 0);
        assert_eq!(s, ReuseState::PortStarved);
        assert_eq!(u.stats().lookups_port_starved, 1);
        u.begin_cycle();
        let (s, _) = u.start_lookup(&d, 1);
        assert_ne!(s, ReuseState::PortStarved, "ports replenish each cycle");
    }

    #[test]
    fn attribution_mirrors_unit_counters() {
        let mut u = unit();
        u.enable_attribution();
        u.begin_cycle();
        let d = alu_di(0x1000, 5, 6, 11);
        assert!(u.try_insert(&d));
        let (s, _) = u.start_lookup(&d, 1);
        let ReuseState::Hit(e) = s else {
            panic!("expected hit, got {s:?}")
        };
        assert!(u.reuse_test(&e, &d));
        assert!(!u.reuse_test(&e, &alu_di(0x1000, 5, 7, 12)));
        let _ = u.start_lookup(&alu_di(0x2000, 1, 2, 3), 2);
        let a = u.attribution().expect("enabled").finish(8);
        let t = a.total();
        let b = u.buffer().stats();
        assert_eq!(t.lookups, b.lookups);
        assert_eq!(t.hits, b.pc_hits + b.victim_hits);
        assert_eq!(t.passes, u.stats().reuse_passed);
        assert_eq!(t.fails, u.stats().reuse_failed);
        assert_eq!(a.classes[0].lookups, t.lookups, "all events were alu");
        assert_eq!(t, a.pc_total());
        assert_eq!(t, a.loop_total());
    }

    #[test]
    fn reuse_class_taxonomy_is_total() {
        use redsim_irb::REUSE_CLASSES;
        let d = alu_di(0x1000, 1, 2, 3);
        assert!(reuse_class(&d) < REUSE_CLASSES);
        assert_eq!(reuse_class(&d), 0);
    }

    #[test]
    fn sys_ops_are_not_eligible() {
        let mut u = unit();
        u.begin_cycle();
        let halt = DynInst {
            seq: 0,
            pc: 0x1000,
            inst: Inst::halt(),
            src1: 0,
            src2: 0,
            result: None,
            ea: None,
            control: None,
            next_pc: 0x1000,
        };
        let (s, _) = u.start_lookup(&halt, 0);
        assert_eq!(s, ReuseState::NotEligible);
        assert!(!u.try_insert(&halt));
    }

    #[test]
    fn memory_ops_buffer_the_effective_address() {
        let load = DynInst {
            seq: 0,
            pc: 0x2000,
            inst: Inst::load_int(Opcode::Ld, IntReg::new(4), IntReg::new(2), 16),
            src1: 0x8000,
            src2: 16,
            result: Some(99),
            ea: Some(0x8010),
            control: None,
            next_pc: 0x2008,
        };
        assert!(reuse_eligible(&load));
        assert_eq!(reuse_output(&load), 0x8010, "address, not the loaded value");
    }

    #[test]
    fn branches_buffer_the_encoded_outcome() {
        let br = DynInst {
            seq: 0,
            pc: 0x3000,
            inst: Inst::branch(Opcode::Beq, IntReg::new(1), IntReg::new(2), -64),
            src1: 7,
            src2: 7,
            result: None,
            ea: None,
            control: Some(ControlOutcome {
                taken: true,
                target: 0x2fc0,
            }),
            next_pc: 0x2fc0,
        };
        assert_eq!(reuse_output(&br), 0x2fc0 | 1 << 63);
    }

    #[test]
    fn operand_names_cover_fp_and_stores() {
        let st = DynInst {
            seq: 0,
            pc: 0x1000,
            inst: Inst::store_int(Opcode::Sd, IntReg::new(7), IntReg::new(2), 0),
            src1: 0x8000,
            src2: 42,
            result: None,
            ea: Some(0x8000),
            control: None,
            next_pc: 0x1008,
        };
        assert_eq!(operand_names(&st), [Some(2), Some(7)]);
    }
}
