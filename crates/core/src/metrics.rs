//! Windowed metrics: time-resolved counters sampled every N simulated
//! cycles, HDR-style histograms with exact percentile extraction, a
//! small insertion-ordered registry with JSONL and Prometheus-style
//! expositions, and a host-side per-phase profiler.
//!
//! The subsystem follows the same discipline as [`crate::trace`]:
//! collection is compiled in but disabled by default, the disabled path
//! costs one predictable branch per cycle, and enabling it is proven
//! observationally pure (it cannot change [`SimStats`]).
//!
//! # Window semantics
//!
//! A *window* covers the half-open simulated-cycle interval
//! `[start_cycle, end_cycle)`. Every counter in a
//! [`WindowSample`] is the exact delta of the corresponding cumulative
//! machine counter over that interval, so summing any field across all
//! windows of a run reproduces the final [`SimStats`] total — the
//! conservation property `tests/metrics_conservation.rs` proves
//! generatively. The final window may be shorter than the configured
//! width (a run rarely ends on a window boundary); it is still emitted.
//! [`WindowSample::ready_occupancy`] is the one instantaneous value: the
//! number of ready RUU entries at the window boundary.
//!
//! # Histogram bucket scheme
//!
//! [`Histogram`] uses log2 octaves subdivided into 16 linear
//! sub-buckets (HDR style): values below 16 are exact, larger values
//! land in a bucket whose width is 1/16th of their octave, bounding the
//! relative quantile error at 6.25%. Buckets are plain integers, so
//! histograms merge associatively — shards aggregated in any order (or
//! across any thread count) produce byte-identical percentiles.
//!
//! [`SimStats`]: crate::SimStats

use std::time::Duration;

use redsim_irb::{REUSE_CLASSES, REUSE_CLASS_NAMES};
use redsim_util::Json;

use crate::stats::StallBreakdown;

/// Default metrics window width in simulated cycles (`--metrics-window`).
pub const DEFAULT_METRICS_WINDOW: u64 = 10_000;

/// Cumulative machine counters a window delta is computed over. Every
/// field mirrors a [`SimStats`](crate::SimStats) (or IRB) counter that
/// only ever increases during a run, so `now - base` is exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCounters {
    /// Architected instructions committed.
    pub committed_insts: u64,
    /// RUU copies committed.
    pub committed_copies: u64,
    /// Cycles in which at least one instruction committed.
    pub active_commit_cycles: u64,
    /// Stall attribution over the window (deltas per cause).
    pub stalls: StallBreakdown,
    /// Copies issued to functional units.
    pub fu_issues: u64,
    /// Duplicate copies served by IRB reuse.
    pub fu_bypasses: u64,
    /// Integer-ALU-pool busy unit-cycles.
    pub int_alu_busy_cycles: u64,
    /// Sum of RUU occupancy over the window's cycles.
    pub ruu_occupancy_sum: u64,
    /// IRB lookups performed.
    pub irb_lookups: u64,
    /// IRB PC-indexed hits.
    pub irb_pc_hits: u64,
    /// IRB victim hits.
    pub irb_victim_hits: u64,
    /// IRB insertions.
    pub irb_inserts: u64,
    /// IRB conflict evictions.
    pub irb_conflict_evictions: u64,
    /// Reuse tests passed.
    pub irb_reuse_passed: u64,
    /// Reuse tests failed.
    pub irb_reuse_failed: u64,
    /// Lookups denied a read port.
    pub irb_lookups_port_starved: u64,
    /// Inserts denied a write port.
    pub irb_inserts_port_starved: u64,
    /// Per-opcode-class attributed lookups, indexed by
    /// [`redsim_irb::REUSE_CLASS_NAMES`]; all zero unless the run
    /// enabled reuse attribution.
    pub attr_lookups: [u64; REUSE_CLASSES],
    /// Per-opcode-class attributed hits.
    pub attr_hits: [u64; REUSE_CLASSES],
    /// Per-opcode-class attributed reuse-test passes.
    pub attr_passes: [u64; REUSE_CLASSES],
}

/// Element-wise `now - base` over a per-class array.
fn attr_delta(now: &[u64; REUSE_CLASSES], base: &[u64; REUSE_CLASSES]) -> [u64; REUSE_CLASSES] {
    let mut out = [0u64; REUSE_CLASSES];
    for i in 0..REUSE_CLASSES {
        out[i] = now[i] - base[i];
    }
    out
}

fn stall_delta(now: &StallBreakdown, base: &StallBreakdown) -> StallBreakdown {
    StallBreakdown {
        frontend_empty: now.frontend_empty - base.frontend_empty,
        waiting_deps: now.waiting_deps - base.waiting_deps,
        issue_starved: now.issue_starved - base.issue_starved,
        fu_contention: now.fu_contention - base.fu_contention,
        irb_port: now.irb_port - base.irb_port,
        execution: now.execution - base.execution,
        commit_blocked: now.commit_blocked - base.commit_blocked,
        rewind: now.rewind - base.rewind,
    }
}

impl WindowCounters {
    /// The exact per-window delta `self - base` (field-wise). `base` is
    /// the cumulative snapshot taken at the previous window boundary.
    #[must_use]
    pub fn delta(&self, base: &WindowCounters) -> WindowCounters {
        WindowCounters {
            committed_insts: self.committed_insts - base.committed_insts,
            committed_copies: self.committed_copies - base.committed_copies,
            active_commit_cycles: self.active_commit_cycles - base.active_commit_cycles,
            stalls: stall_delta(&self.stalls, &base.stalls),
            fu_issues: self.fu_issues - base.fu_issues,
            fu_bypasses: self.fu_bypasses - base.fu_bypasses,
            int_alu_busy_cycles: self.int_alu_busy_cycles - base.int_alu_busy_cycles,
            ruu_occupancy_sum: self.ruu_occupancy_sum - base.ruu_occupancy_sum,
            irb_lookups: self.irb_lookups - base.irb_lookups,
            irb_pc_hits: self.irb_pc_hits - base.irb_pc_hits,
            irb_victim_hits: self.irb_victim_hits - base.irb_victim_hits,
            irb_inserts: self.irb_inserts - base.irb_inserts,
            irb_conflict_evictions: self.irb_conflict_evictions - base.irb_conflict_evictions,
            irb_reuse_passed: self.irb_reuse_passed - base.irb_reuse_passed,
            irb_reuse_failed: self.irb_reuse_failed - base.irb_reuse_failed,
            irb_lookups_port_starved: self.irb_lookups_port_starved - base.irb_lookups_port_starved,
            irb_inserts_port_starved: self.irb_inserts_port_starved - base.irb_inserts_port_starved,
            attr_lookups: attr_delta(&self.attr_lookups, &base.attr_lookups),
            attr_hits: attr_delta(&self.attr_hits, &base.attr_hits),
            attr_passes: attr_delta(&self.attr_passes, &base.attr_passes),
        }
    }

    /// Accumulates another window's deltas into this one.
    pub fn add(&mut self, other: &WindowCounters) {
        self.committed_insts += other.committed_insts;
        self.committed_copies += other.committed_copies;
        self.active_commit_cycles += other.active_commit_cycles;
        self.stalls.add(&other.stalls);
        self.fu_issues += other.fu_issues;
        self.fu_bypasses += other.fu_bypasses;
        self.int_alu_busy_cycles += other.int_alu_busy_cycles;
        self.ruu_occupancy_sum += other.ruu_occupancy_sum;
        self.irb_lookups += other.irb_lookups;
        self.irb_pc_hits += other.irb_pc_hits;
        self.irb_victim_hits += other.irb_victim_hits;
        self.irb_inserts += other.irb_inserts;
        self.irb_conflict_evictions += other.irb_conflict_evictions;
        self.irb_reuse_passed += other.irb_reuse_passed;
        self.irb_reuse_failed += other.irb_reuse_failed;
        self.irb_lookups_port_starved += other.irb_lookups_port_starved;
        self.irb_inserts_port_starved += other.irb_inserts_port_starved;
        for i in 0..REUSE_CLASSES {
            self.attr_lookups[i] += other.attr_lookups[i];
            self.attr_hits[i] += other.attr_hits[i];
            self.attr_passes[i] += other.attr_passes[i];
        }
    }
}

/// One window of the time series: exact counter deltas over
/// `[start_cycle, end_cycle)` plus the instantaneous ready-set size at
/// the boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Zero-based window index.
    pub index: u64,
    /// First cycle covered (inclusive).
    pub start_cycle: u64,
    /// One past the last cycle covered (exclusive).
    pub end_cycle: u64,
    /// Ready RUU entries at the window boundary (instantaneous).
    pub ready_occupancy: u64,
    /// Exact counter deltas over the window.
    pub counters: WindowCounters,
}

impl WindowSample {
    /// Simulated cycles the window covers.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// Architected IPC over the window, in thousandths (integer, so it
    /// is exact, mergeable and byte-stable across platforms).
    #[must_use]
    pub fn milli_ipc(&self) -> u64 {
        (self.counters.committed_insts * 1000)
            .checked_div(self.cycles())
            .unwrap_or(0)
    }

    /// IRB hit rate over the window in thousandths (PC + victim hits
    /// per lookup); 0 when the window performed no lookups.
    #[must_use]
    pub fn irb_hit_permille(&self) -> u64 {
        ((self.counters.irb_pc_hits + self.counters.irb_victim_hits) * 1000)
            .checked_div(self.counters.irb_lookups)
            .unwrap_or(0)
    }

    /// The sample as one flat-ish JSON object (one JSONL line of
    /// `--metrics-out`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let c = &self.counters;
        Json::obj()
            .field("window", self.index)
            .field("start_cycle", self.start_cycle)
            .field("end_cycle", self.end_cycle)
            .field("committed_insts", c.committed_insts)
            .field("committed_copies", c.committed_copies)
            .field("milli_ipc", self.milli_ipc())
            .field("active_commit_cycles", c.active_commit_cycles)
            .field("stalls", c.stalls.to_json())
            .field("fu_issues", c.fu_issues)
            .field("fu_bypasses", c.fu_bypasses)
            .field("int_alu_busy_cycles", c.int_alu_busy_cycles)
            .field("ruu_occupancy_sum", c.ruu_occupancy_sum)
            .field("ready_occupancy", self.ready_occupancy)
            .field(
                "irb",
                Json::obj()
                    .field("lookups", c.irb_lookups)
                    .field("pc_hits", c.irb_pc_hits)
                    .field("victim_hits", c.irb_victim_hits)
                    .field("inserts", c.irb_inserts)
                    .field("conflict_evictions", c.irb_conflict_evictions)
                    .field("reuse_passed", c.irb_reuse_passed)
                    .field("reuse_failed", c.irb_reuse_failed)
                    .field("lookups_port_starved", c.irb_lookups_port_starved)
                    .field("inserts_port_starved", c.irb_inserts_port_starved),
            )
            .field("attribution", {
                let mut a = Json::obj();
                for (i, name) in REUSE_CLASS_NAMES.iter().enumerate() {
                    a = a.field(
                        name,
                        Json::obj()
                            .field("lookups", c.attr_lookups[i])
                            .field("hits", c.attr_hits[i])
                            .field("passes", c.attr_passes[i]),
                    );
                }
                a
            })
    }
}

/// A windowed-metrics sink, mirroring [`Tracer`](crate::Tracer): the
/// machine caches [`MetricsSink::enabled`] once, and a disabled sink
/// (the default [`NullMetrics`]) costs one predictable branch per
/// cycle with no allocation.
pub trait MetricsSink {
    /// Whether the machine should compute window samples at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Window width in simulated cycles (values below 1 are clamped).
    fn window_cycles(&self) -> u64 {
        DEFAULT_METRICS_WINDOW
    }

    /// Receives one completed window.
    fn record_window(&mut self, sample: &WindowSample);
}

/// The no-op sink: reports `enabled() == false`, so the per-cycle
/// boundary check is the only cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMetrics;

impl MetricsSink for NullMetrics {
    fn enabled(&self) -> bool {
        false
    }

    fn record_window(&mut self, _sample: &WindowSample) {}
}

/// The standard in-memory sink: stores every window in order and
/// renders JSONL, a registry, or a Prometheus-style exposition.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    window: u64,
    samples: Vec<WindowSample>,
}

impl MetricsCollector {
    /// Creates a collector with the given window width in simulated
    /// cycles (clamped to at least 1).
    #[must_use]
    pub fn new(window_cycles: u64) -> Self {
        MetricsCollector {
            window: window_cycles.max(1),
            samples: Vec::new(),
        }
    }

    /// The recorded windows, in order.
    #[must_use]
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// Consumes the collector, returning the recorded windows.
    #[must_use]
    pub fn into_samples(self) -> Vec<WindowSample> {
        self.samples
    }

    /// The time series as JSONL: one [`WindowSample::to_json`] object
    /// per line, trailing newline included when non-empty.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Summarizes the run into a [`MetricsRegistry`]: whole-run
    /// counters plus per-window distribution histograms.
    #[must_use]
    pub fn registry(&self) -> MetricsRegistry {
        let mut total = WindowCounters::default();
        let mut cycles = 0u64;
        let mut ipc = Histogram::new();
        let mut ready = Histogram::new();
        let mut irb_hit = Histogram::new();
        for s in &self.samples {
            total.add(&s.counters);
            cycles += s.cycles();
            ipc.record(s.milli_ipc());
            ready.record(s.ready_occupancy);
            if s.counters.irb_lookups > 0 {
                irb_hit.record(s.irb_hit_permille());
            }
        }
        let mut r = MetricsRegistry::new();
        r.counter("redsim_cycles_total", "Simulated cycles covered", cycles);
        r.counter(
            "redsim_committed_insts_total",
            "Architected instructions committed",
            total.committed_insts,
        );
        r.counter(
            "redsim_committed_copies_total",
            "RUU copies committed",
            total.committed_copies,
        );
        r.counter(
            "redsim_fu_issues_total",
            "Copies issued to functional units",
            total.fu_issues,
        );
        r.counter(
            "redsim_fu_bypasses_total",
            "Copies served by IRB reuse",
            total.fu_bypasses,
        );
        r.counter(
            "redsim_irb_lookups_total",
            "IRB lookups performed",
            total.irb_lookups,
        );
        r.counter(
            "redsim_irb_hits_total",
            "IRB hits (PC + victim)",
            total.irb_pc_hits + total.irb_victim_hits,
        );
        r.counter(
            "redsim_stall_cycles_total",
            "Cycles attributed to a stall cause",
            total.stalls.total(),
        );
        // Per-class reuse attribution (the registry has no label
        // support, so class names ride in the metric name). All zero
        // unless the run enabled attribution.
        for (i, name) in REUSE_CLASS_NAMES.iter().enumerate() {
            r.counter(
                &format!("redsim_attr_{name}_lookups_total"),
                "Attributed IRB lookups for this opcode class",
                total.attr_lookups[i],
            );
            r.counter(
                &format!("redsim_attr_{name}_hits_total"),
                "Attributed IRB hits for this opcode class",
                total.attr_hits[i],
            );
            r.counter(
                &format!("redsim_attr_{name}_passes_total"),
                "Attributed reuse-test passes for this opcode class",
                total.attr_passes[i],
            );
        }
        r.gauge(
            "redsim_metrics_window_cycles",
            "Configured window width in simulated cycles",
            self.window as f64,
        );
        r.histogram(
            "redsim_window_milli_ipc",
            "Per-window architected IPC in thousandths",
            ipc,
        );
        r.histogram(
            "redsim_window_ready_occupancy",
            "Ready RUU entries at each window boundary",
            ready,
        );
        r.histogram(
            "redsim_window_irb_hit_permille",
            "Per-window IRB hit rate in thousandths",
            irb_hit,
        );
        r
    }
}

impl MetricsSink for MetricsCollector {
    fn window_cycles(&self) -> u64 {
        self.window
    }

    fn record_window(&mut self, sample: &WindowSample) {
        self.samples.push(*sample);
    }
}

/// Linear sub-buckets per octave (2^4 = 16): relative quantile error is
/// bounded by 1/16 = 6.25%; values below 16 are exact.
const SUB_BITS: u32 = 4;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// An HDR-style integer histogram: log2 octaves split into 16 linear
/// sub-buckets. Recording is O(1) and
/// allocation-free in the steady state; merging is field-wise addition,
/// so any aggregation order yields identical percentiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let shift = msb - u64::from(SUB_BITS);
        ((shift + 1) * SUB_BUCKETS + ((v >> shift) - SUB_BUCKETS)) as usize
    }
}

fn bucket_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        idx
    } else {
        let shift = idx / SUB_BUCKETS - 1;
        let sub = idx % SUB_BUCKETS;
        let low = (SUB_BUCKETS + sub) << shift;
        // Parenthesized so the topmost bucket (bound u64::MAX) cannot
        // overflow before the -1 applies.
        low + ((1u64 << shift) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += n;
        self.sum += v * n;
    }

    /// Merges another histogram into this one (bucket-wise addition;
    /// associative and commutative, so shard order never matters).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Recorded value count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at or below which `p` percent of recordings fall,
    /// reported as its bucket's upper bound (exact below 16, within
    /// 6.25% above), clamped to the observed maximum. `p` is an integer
    /// percent in `[0, 100]`; an empty histogram reports 0.
    #[must_use]
    pub fn percentile(&self, p: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = u64::from(p.min(100));
        // Rank of the target recording, 1-based, rounding up — p50 of
        // two recordings is the first, p100 is always the last.
        let target = ((self.count * p).div_ceil(100)).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// The histogram as JSON: summary stats plus the standard
    /// percentiles.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("count", self.count())
            .field("sum", self.sum())
            .field("min", self.min())
            .field("max", self.max())
            .field("p50", self.percentile(50))
            .field("p90", self.percentile(90))
            .field("p99", self.percentile(99))
    }

    /// Occupied buckets as `(upper_bound, count)` pairs, in value order
    /// (for cumulative expositions).
    fn occupied(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_bound(idx), n))
    }
}

/// A named metric value.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A distribution.
    Histogram(Histogram),
}

/// An insertion-ordered registry of named metrics with help strings,
/// rendered as JSON or a Prometheus-style text exposition. Ordering is
/// deterministic (insertion order), so output is byte-stable.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Vec<(String, String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.metrics
            .push((name.to_string(), help.to_string(), Metric::Counter(value)));
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.metrics
            .push((name.to_string(), help.to_string(), Metric::Gauge(value)));
    }

    /// Registers a histogram.
    pub fn histogram(&mut self, name: &str, help: &str, h: Histogram) {
        self.metrics
            .push((name.to_string(), help.to_string(), Metric::Histogram(h)));
    }

    /// The registered metrics, in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, &Metric)> {
        self.metrics
            .iter()
            .map(|(n, h, m)| (n.as_str(), h.as_str(), m))
    }

    /// The registry as one JSON object keyed by metric name.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        for (name, _, m) in self.entries() {
            let v = match m {
                Metric::Counter(c) => Json::from(*c),
                Metric::Gauge(g) => Json::from(*g),
                Metric::Histogram(h) => h.to_json(),
            };
            j = j.field(name, v);
        }
        j
    }

    /// A Prometheus-style text exposition (`# HELP` / `# TYPE` comment
    /// pairs; histograms expose cumulative `_bucket{le=...}` series
    /// plus `_sum` and `_count`).
    ///
    /// Names are sanitized to the metric-name alphabet
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*` and help text has `\` and newlines
    /// escaped, so a registry entry with a hostile name or multi-line
    /// help can never emit an unparseable exposition.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (raw_name, raw_help, m) in self.entries() {
            let name = prometheus_name(raw_name);
            let help = prometheus_help(raw_help);
            let _ = writeln!(out, "# HELP {name} {help}");
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {c}");
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {g}");
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for (bound, n) in h.occupied() {
                        cum += n;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

/// Maps a registry name onto the Prometheus metric-name alphabet
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every illegal character becomes `_`
/// (including a leading digit), and an empty name becomes `_`. The map
/// is position-preserving, so distinct sane names stay distinct.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len().max(1));
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if legal { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes help text for a `# HELP` line: `\` → `\\`, newline → `\n`
/// (carriage returns fold into the newline escape), per the exposition
/// format's escaping rules. Without this a multi-line help string
/// splits the comment across lines and the exposition stops parsing.
fn prometheus_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => {}
            other => out.push(other),
        }
    }
    out
}

/// A host pipeline phase, for self-profiling where the *simulator*
/// spends wall-clock time. The five phases map onto the cycle loop's
/// stage calls: `fetch` → [`HostPhase::Fetch`], `dispatch` →
/// [`HostPhase::Schedule`] (rename + wakeup linkage), `issue` →
/// [`HostPhase::Execute`] (selection + FU allocation + reuse tests),
/// `writeback` → [`HostPhase::Writeback`], `commit` →
/// [`HostPhase::Commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPhase {
    /// The fetch stage (front end + I-cache).
    Fetch,
    /// The dispatch stage (rename, dependence linkage).
    Schedule,
    /// The issue stage (selection, FU allocation, reuse tests).
    Execute,
    /// The writeback stage (completion, broadcast).
    Writeback,
    /// The commit stage (retirement, pair checks, IRB update).
    Commit,
}

const HOST_PHASES: [(HostPhase, &str); 5] = [
    (HostPhase::Fetch, "fetch"),
    (HostPhase::Schedule, "schedule"),
    (HostPhase::Execute, "execute"),
    (HostPhase::Writeback, "writeback"),
    (HostPhase::Commit, "commit"),
];

/// Cheap per-phase wall-clock accounting for the simulator itself.
/// Attach one to an [`Instrumentation`](crate::Instrumentation) bundle
/// and the cycle loop times each stage call with two monotonic-clock
/// reads per phase; the accumulated nanoseconds surface in bench JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostProfiler {
    nanos: [u64; 5],
    /// Profiled simulated cycles.
    pub cycles: u64,
}

fn phase_slot(p: HostPhase) -> usize {
    match p {
        HostPhase::Fetch => 0,
        HostPhase::Schedule => 1,
        HostPhase::Execute => 2,
        HostPhase::Writeback => 3,
        HostPhase::Commit => 4,
    }
}

impl HostProfiler {
    /// An empty profiler.
    #[must_use]
    pub fn new() -> Self {
        HostProfiler::default()
    }

    /// Adds elapsed wall time to a phase.
    pub fn add(&mut self, phase: HostPhase, elapsed: Duration) {
        self.nanos[phase_slot(phase)] += elapsed.as_nanos() as u64;
    }

    /// Folds another profiler's accounting into this one.
    pub fn merge(&mut self, other: &HostProfiler) {
        for (a, b) in self.nanos.iter_mut().zip(&other.nanos) {
            *a += b;
        }
        self.cycles += other.cycles;
    }

    /// Accumulated nanoseconds for a phase.
    #[must_use]
    pub fn nanos(&self, phase: HostPhase) -> u64 {
        self.nanos[phase_slot(phase)]
    }

    /// Total accumulated nanoseconds across all phases.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// The accounting as JSON: per-phase seconds and shares plus the
    /// profiled cycle count.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let total = self.total_nanos();
        let mut phases = Json::obj();
        for (p, name) in HOST_PHASES {
            let n = self.nanos(p);
            let share = if total == 0 {
                0.0
            } else {
                n as f64 / total as f64
            };
            phases = phases.field(
                name,
                Json::obj()
                    .field("seconds", n as f64 / 1e9)
                    .field("share", share),
            );
        }
        Json::obj()
            .field("cycles", self.cycles)
            .field("total_seconds", total as f64 / 1e9)
            .field("phases", phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for p in [1u8, 25, 50, 75, 100] {
            let expect = (u64::from(p) * 16).div_ceil(100).max(1) - 1;
            assert_eq!(h.percentile(p), expect, "p{p}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), 120);
    }

    #[test]
    fn bucket_bounds_are_consistent_with_indexing() {
        for v in (0..4096u64).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let idx = bucket_index(v);
            let hi = bucket_bound(idx);
            assert!(hi >= v, "bound {hi} below value {v}");
            if idx > 0 {
                let lo_prev = bucket_bound(idx - 1);
                assert!(lo_prev < v, "value {v} fits the previous bucket");
            }
            // Relative error bound: bucket width <= value / 16.
            if v >= 16 {
                assert!(hi - v <= v / 16, "bucket too wide at {v}");
            }
        }
    }

    #[test]
    fn percentile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 7);
        }
        for p in [50u8, 90, 99] {
            let exact = u64::from(p) * 10_000 / 100 * 7;
            let got = h.percentile(p);
            assert!(got >= exact, "p{p}: {got} < exact {exact}");
            assert!(
                got - exact <= exact / 16 + 7,
                "p{p}: {got} vs {exact} exceeds the 6.25% bound"
            );
        }
        assert_eq!(h.percentile(100), h.max());
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            let x = v * v % 977;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        let mut other_order = b;
        other_order.merge(&a);
        assert_eq!(other_order, whole);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn window_sample_rates() {
        let c = WindowCounters {
            committed_insts: 1234,
            irb_lookups: 100,
            irb_pc_hits: 40,
            irb_victim_hits: 10,
            ..WindowCounters::default()
        };
        let s = WindowSample {
            index: 0,
            start_cycle: 0,
            end_cycle: 1000,
            ready_occupancy: 3,
            counters: c,
        };
        assert_eq!(s.cycles(), 1000);
        assert_eq!(s.milli_ipc(), 1234);
        assert_eq!(s.irb_hit_permille(), 500);
    }

    #[test]
    fn delta_then_add_round_trips() {
        let base = WindowCounters {
            committed_insts: 10,
            stalls: StallBreakdown {
                execution: 4,
                ..StallBreakdown::default()
            },
            ..WindowCounters::default()
        };
        let mut now = base;
        now.committed_insts = 25;
        now.stalls.execution = 9;
        now.irb_lookups = 7;
        let d = now.delta(&base);
        assert_eq!(d.committed_insts, 15);
        assert_eq!(d.stalls.execution, 5);
        assert_eq!(d.irb_lookups, 7);
        let mut back = base;
        back.add(&d);
        assert_eq!(back, now);
    }

    #[test]
    fn registry_renders_json_and_prometheus() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(300);
        let mut r = MetricsRegistry::new();
        r.counter("redsim_test_total", "a counter", 42);
        r.gauge("redsim_test_gauge", "a gauge", 1.5);
        r.histogram("redsim_test_hist", "a histogram", h);
        let j = r.to_json().to_string();
        assert!(j.contains("\"redsim_test_total\":42"));
        assert!(j.contains("\"p50\":"));
        let p = r.to_prometheus();
        assert!(p.contains("# TYPE redsim_test_total counter"));
        assert!(p.contains("redsim_test_total 42"));
        assert!(p.contains("# TYPE redsim_test_hist histogram"));
        assert!(p.contains("redsim_test_hist_bucket{le=\"+Inf\"} 2"));
        assert!(p.contains("redsim_test_hist_count 2"));
        // Cumulative buckets end at the total count.
        let last_bucket = p
            .lines()
            .rfind(|l| l.starts_with("redsim_test_hist_bucket"))
            .unwrap();
        assert!(last_bucket.ends_with(" 2"));
    }

    #[test]
    fn prometheus_exposition_survives_hostile_names_and_help() {
        // Regression: names and help text used to be interpolated
        // verbatim, so a name with a space or a help string with a
        // newline produced lines no exposition parser accepts.
        let mut h = Histogram::new();
        h.record(5);
        let mut r = MetricsRegistry::new();
        r.counter("bad name!", "line one\nline two \\ backslash", 1);
        r.gauge("9starts_with_digit", "ok", 2.0);
        r.histogram("", "empty name", h);
        let p = r.to_prometheus();

        // Sanitized spellings, deterministically derived.
        assert!(p.contains("# HELP bad_name_ line one\\nline two \\\\ backslash"));
        assert!(p.contains("bad_name_ 1"));
        assert!(p.contains("# TYPE _starts_with_digit gauge"));
        assert!(p.contains("__bucket{le=\"+Inf\"} 1"), "{p}");

        // Every line is structurally parseable: a `# HELP`/`# TYPE`
        // comment or a `<name>[{labels}] <value>` sample whose name
        // matches [a-zA-Z_:][a-zA-Z0-9_:]*.
        let name_ok = |s: &str| {
            !s.is_empty()
                && s.chars().enumerate().all(|(i, c)| {
                    c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
                })
        };
        for line in p.lines() {
            if let Some(rest) = line
                .strip_prefix("# HELP ")
                .or(line.strip_prefix("# TYPE "))
            {
                let name = rest.split(' ').next().unwrap();
                assert!(name_ok(name), "bad comment name in {line:?}");
            } else {
                let sample_name = line.split(['{', ' ']).next().unwrap_or_default();
                assert!(name_ok(sample_name), "bad sample name in {line:?}");
                assert!(
                    line.split_whitespace().count() >= 2,
                    "sample line {line:?} has no value"
                );
            }
        }
    }

    #[test]
    fn profiler_accounts_and_merges() {
        let mut p = HostProfiler::new();
        p.add(HostPhase::Fetch, Duration::from_nanos(100));
        p.add(HostPhase::Commit, Duration::from_nanos(300));
        p.cycles = 2;
        let mut q = HostProfiler::new();
        q.add(HostPhase::Fetch, Duration::from_nanos(50));
        q.cycles = 1;
        p.merge(&q);
        assert_eq!(p.nanos(HostPhase::Fetch), 150);
        assert_eq!(p.total_nanos(), 450);
        assert_eq!(p.cycles, 3);
        let j = p.to_json().to_string();
        assert!(j.contains("\"total_seconds\":"));
        assert!(j.contains("\"fetch\":"));
    }
}
