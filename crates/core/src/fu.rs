//! Functional-unit pools.

use redsim_isa::OpClass;

use crate::config::{FuCounts, LatencyConfig};

/// The four functional-unit pools of the paper's machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pool {
    /// Single-cycle integer ALUs (also branch targets, memory address
    /// calculation, system ops).
    IntAlu,
    /// Integer multiplier/dividers.
    IntMulDiv,
    /// FP adders (add/sub/compare/convert/move).
    FpAdd,
    /// FP multiplier/divider/square-root units.
    FpMulDivSqrt,
}

impl Pool {
    /// Which pool executes operations of `class`.
    #[must_use]
    pub fn for_class(class: OpClass) -> Pool {
        match class {
            OpClass::IntAlu
            | OpClass::Load
            | OpClass::Store
            | OpClass::Branch
            | OpClass::Jump
            | OpClass::Sys => Pool::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => Pool::IntMulDiv,
            OpClass::FpAdd => Pool::FpAdd,
            OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => Pool::FpMulDivSqrt,
        }
    }
}

/// Latency and pipelining of one operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTiming {
    /// Cycles from issue to result broadcast.
    pub latency: u64,
    /// Whether the unit accepts a new operation every cycle.
    pub pipelined: bool,
}

/// Looks up the timing for an operation class.
#[must_use]
pub fn op_timing(class: OpClass, lat: &LatencyConfig) -> OpTiming {
    match class {
        OpClass::IntAlu | OpClass::Sys => OpTiming {
            latency: lat.int_alu,
            pipelined: true,
        },
        // Branch condition + target and memory address generation are
        // single-cycle ALU work; load data latency is added by the
        // cache model on top.
        OpClass::Branch | OpClass::Jump | OpClass::Load | OpClass::Store => OpTiming {
            latency: lat.int_alu,
            pipelined: true,
        },
        OpClass::IntMul => OpTiming {
            latency: lat.int_mul,
            pipelined: true,
        },
        OpClass::IntDiv => OpTiming {
            latency: lat.int_div,
            pipelined: false,
        },
        OpClass::FpAdd => OpTiming {
            latency: lat.fp_add,
            pipelined: true,
        },
        OpClass::FpMul => OpTiming {
            latency: lat.fp_mul,
            pipelined: true,
        },
        OpClass::FpDiv => OpTiming {
            latency: lat.fp_div,
            pipelined: false,
        },
        OpClass::FpSqrt => OpTiming {
            latency: lat.fp_sqrt,
            pipelined: false,
        },
    }
}

/// Most units any one pool can hold; pool sizes are single digits in
/// every configuration the paper sweeps.
const MAX_UNITS: usize = 16;

/// One pool of identical units, each free or busy-until-cycle.
///
/// The per-unit deadlines live in a fixed inline array rather than a
/// `Vec`: `try_issue` runs once per issue-candidate attempt, and the
/// scan must not chase a heap pointer to read four u64s.
#[derive(Debug, Clone)]
struct UnitPool {
    busy_until: [u64; MAX_UNITS],
    count: usize,
    busy_cycles: u64,
    /// No unit frees before this cycle — cached on a full-pool miss.
    /// `busy_until` values only grow, so the bound stays valid forever
    /// and repeated structural-hazard probes skip the scan entirely.
    free_hint: u64,
}

impl UnitPool {
    fn new(count: usize) -> Self {
        assert!(
            count <= MAX_UNITS,
            "pool of {count} units exceeds {MAX_UNITS}"
        );
        UnitPool {
            busy_until: [0; MAX_UNITS],
            count,
            busy_cycles: 0,
            free_hint: 0,
        }
    }

    #[inline]
    fn try_issue(&mut self, cycle: u64, timing: OpTiming) -> bool {
        if cycle < self.free_hint {
            return false;
        }
        let units = &mut self.busy_until[..self.count];
        let Some(unit) = units.iter_mut().find(|b| **b <= cycle) else {
            self.free_hint = units.iter().copied().min().unwrap_or(u64::MAX);
            return false;
        };
        // A pipelined unit is only unavailable for the issue cycle; an
        // unpipelined one is held for the full latency.
        *unit = if timing.pipelined {
            cycle + 1
        } else {
            cycle + timing.latency
        };
        self.busy_cycles += if timing.pipelined { 1 } else { timing.latency };
        true
    }
}

/// The machine's functional units.
///
/// # Examples
///
/// ```
/// use redsim_core::{FuCounts, LatencyConfig};
/// use redsim_isa::OpClass;
///
/// // FuBank is internal to the simulator; this example exercises the
/// // public configuration types that size it.
/// let fu = FuCounts::paper_baseline();
/// assert_eq!(fu.int_alu, 4);
/// let lat = LatencyConfig::simplescalar_defaults();
/// assert_eq!(lat.int_div, 20);
/// ```
#[derive(Debug, Clone)]
pub struct FuBank {
    /// Indexed by `Pool as usize`.
    pools: [UnitPool; 4],
    /// Per-class `(pool index, timing)`, folded at construction so the
    /// per-attempt hot path is two table reads instead of three matches
    /// against the opcode class.
    dispatch: [(u8, OpTiming); OpClass::ALL.len()],
    issued_by_class: [u64; OpClass::ALL.len()],
}

impl FuBank {
    /// Creates the pools.
    #[must_use]
    pub fn new(counts: FuCounts, latency: LatencyConfig) -> Self {
        let mut dispatch = [(
            0u8,
            OpTiming {
                latency: 0,
                pipelined: true,
            },
        ); OpClass::ALL.len()];
        for class in OpClass::ALL {
            dispatch[class as usize] = (Pool::for_class(class) as u8, op_timing(class, &latency));
        }
        FuBank {
            pools: [
                UnitPool::new(counts.int_alu),
                UnitPool::new(counts.int_mul_div),
                UnitPool::new(counts.fp_add),
                UnitPool::new(counts.fp_mul_div_sqrt),
            ],
            dispatch,
            issued_by_class: [0; OpClass::ALL.len()],
        }
    }

    /// Attempts to issue an operation of `class` at `cycle`.
    ///
    /// Returns the operation's completion cycle on success, `None` if
    /// every unit of the pool is busy (a structural hazard).
    #[inline]
    pub fn try_issue(&mut self, class: OpClass, cycle: u64) -> Option<u64> {
        let (pool, timing) = self.dispatch[class as usize];
        if self.pools[pool as usize].try_issue(cycle, timing) {
            self.issued_by_class[class as usize] += 1;
            Some(cycle + timing.latency)
        } else {
            None
        }
    }

    /// The pool index (`Pool as u8`) an operation class dispatches to.
    /// The mapping is class-intrinsic, so it is identical across banks.
    #[inline]
    #[must_use]
    pub fn pool_index(&self, class: OpClass) -> u8 {
        self.dispatch[class as usize].0
    }

    /// Operations issued so far for one class.
    #[must_use]
    pub fn issued(&self, class: OpClass) -> u64 {
        self.issued_by_class[class as usize]
    }

    /// Busy unit-cycles accumulated by a pool (utilization numerator).
    #[must_use]
    pub fn busy_cycles(&self, pool: Pool) -> u64 {
        self.pools[pool as usize].busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> FuBank {
        FuBank::new(
            FuCounts {
                int_alu: 2,
                int_mul_div: 1,
                fp_add: 1,
                fp_mul_div_sqrt: 1,
            },
            LatencyConfig::simplescalar_defaults(),
        )
    }

    #[test]
    fn pool_capacity_limits_per_cycle_issue() {
        let mut b = bank();
        assert!(b.try_issue(OpClass::IntAlu, 10).is_some());
        assert!(b.try_issue(OpClass::IntAlu, 10).is_some());
        assert!(b.try_issue(OpClass::IntAlu, 10).is_none(), "only 2 ALUs");
        assert!(
            b.try_issue(OpClass::IntAlu, 11).is_some(),
            "free next cycle"
        );
    }

    #[test]
    fn pipelined_units_accept_back_to_back() {
        let mut b = bank();
        assert_eq!(b.try_issue(OpClass::IntMul, 5), Some(8), "3-cycle mul");
        assert!(b.try_issue(OpClass::IntMul, 6).is_some(), "pipelined");
    }

    #[test]
    fn unpipelined_divider_blocks_for_full_latency() {
        let mut b = bank();
        assert_eq!(b.try_issue(OpClass::IntDiv, 0), Some(20));
        assert!(b.try_issue(OpClass::IntDiv, 1).is_none());
        assert!(b.try_issue(OpClass::IntDiv, 19).is_none());
        assert!(b.try_issue(OpClass::IntDiv, 20).is_some());
    }

    #[test]
    fn mul_and_div_share_the_same_pool() {
        let mut b = bank();
        assert!(b.try_issue(OpClass::IntDiv, 0).is_some());
        assert!(
            b.try_issue(OpClass::IntMul, 1).is_none(),
            "single shared unit"
        );
    }

    #[test]
    fn address_calcs_consume_int_alus() {
        let mut b = bank();
        assert!(b.try_issue(OpClass::Load, 0).is_some());
        assert!(b.try_issue(OpClass::Branch, 0).is_some());
        assert!(
            b.try_issue(OpClass::IntAlu, 0).is_none(),
            "loads and branches occupy the 2 ALUs"
        );
    }

    #[test]
    fn fp_classes_map_to_fp_pools() {
        let mut b = bank();
        assert_eq!(b.try_issue(OpClass::FpAdd, 0), Some(2));
        assert_eq!(b.try_issue(OpClass::FpMul, 0), Some(4));
        assert!(
            b.try_issue(OpClass::FpSqrt, 0).is_none(),
            "sqrt shares the single fp-mul unit within a cycle"
        );
        assert!(
            b.try_issue(OpClass::FpSqrt, 1).is_some(),
            "the pipelined multiply frees the unit next cycle"
        );
    }

    #[test]
    fn class_discriminants_index_the_all_table() {
        // The per-class issue counters index by discriminant; that is
        // only the same table `OpClass::ALL` describes while ALL stays
        // in declaration order.
        for (i, &c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c as usize, i, "{c:?}");
        }
    }

    #[test]
    fn issue_counters_accumulate() {
        let mut b = bank();
        b.try_issue(OpClass::IntAlu, 0);
        b.try_issue(OpClass::IntAlu, 1);
        b.try_issue(OpClass::FpAdd, 1);
        assert_eq!(b.issued(OpClass::IntAlu), 2);
        assert_eq!(b.issued(OpClass::FpAdd), 1);
        assert_eq!(b.issued(OpClass::IntDiv), 0);
        assert_eq!(b.busy_cycles(Pool::IntAlu), 2);
    }
}
