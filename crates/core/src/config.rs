//! Machine configuration.

use redsim_irb::IrbConfig;
use redsim_mem::HierarchyConfig;
use redsim_predictor::{BtbConfig, DirectionConfig};

/// Which execution discipline the core runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Single instruction execution — no redundancy (the baseline).
    Sie,
    /// Dual instruction execution — every instruction duplicated at
    /// dispatch, pairs checked at commit (Ray-Hoe-Falsafi DIE).
    Die,
    /// DIE with the duplicate stream served by the instruction reuse
    /// buffer (the paper's DIE-IRB).
    DieIrb,
    /// Single-stream instruction reuse (Sodani-Sohi), for the ablation
    /// showing IRB bandwidth amplification barely helps a balanced SIE.
    SieIrb,
    /// Clustered DIE: the duplicate stream runs on its own replicated
    /// functional-unit cluster with per-stream forwarding and an
    /// inter-cluster delay on the shared memory data. The alternative
    /// the paper discusses and rejects as "bordering on spatial
    /// redundancy" (§3) — included so the argument can be measured.
    DieCluster,
}

impl ExecMode {
    /// `true` for the modes that duplicate instructions.
    #[must_use]
    pub fn is_dual(self) -> bool {
        matches!(
            self,
            ExecMode::Die | ExecMode::DieIrb | ExecMode::DieCluster
        )
    }

    /// `true` for the modes with an instruction reuse buffer.
    #[must_use]
    pub fn has_irb(self) -> bool {
        matches!(self, ExecMode::DieIrb | ExecMode::SieIrb)
    }
}

/// Who wakes up the duplicate stream's waiting instructions (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForwardingPolicy {
    /// Each stream forwards only within itself (the original DIE). An
    /// IRB under this policy needs its own forwarding buses — the
    /// complexity the paper is avoiding.
    PerStream,
    /// The primary stream's result bus wakes waiting instructions of
    /// *both* streams (the paper's complexity-effective design). The
    /// IRB then never needs to broadcast.
    PrimaryToBoth,
}

/// Which ready entries the select logic favours in dual modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssuePolicy {
    /// The mode's natural policy: symmetric oldest-first for plain DIE
    /// (the original proposal treats the streams identically),
    /// primary-first for DIE-IRB (§3.1: "the primary stream is always
    /// executed by the functional units as in SIE").
    ModeDefault,
    /// Strictly oldest-first, regardless of stream.
    OldestFirst,
    /// Primary copies (oldest-first) before duplicate copies — isolates
    /// how much of DIE-IRB's gain is scheduling rather than reuse.
    PrimaryFirst,
}

/// Which implementation drives the scheduling loop (issue + writeback).
///
/// Both engines produce bit-identical [`crate::SimStats`]; they differ
/// only in host cost. The scan reference exists as the equivalence
/// oracle for the event-driven engine's tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedEngine {
    /// Per-stream ready queues plus a completion calendar (timing
    /// wheel): each cycle touches only the entries that actually have
    /// work. The default.
    EventDriven,
    /// The original full-window scans — O(RUU) per cycle regardless of
    /// how much is in flight.
    ScanReference,
}

/// How the issue window obtains operands, which dictates when the IRB
/// reuse test can run (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerModel {
    /// Data-capture scheduler (the paper's evaluated design): operands
    /// are broadcast into the issue window, so the `Rdy2` comparators
    /// run the reuse test in parallel with operand capture — no extra
    /// latency and no functional-unit involvement.
    DataCapture,
    /// Non-data-capture with pipelined wakeup/selection (the paper's
    /// recommended adaptation, after Stark et al.): the register file is
    /// read after wakeup and the reuse test follows it, one cycle after
    /// the duplicate becomes ready; failing duplicates are re-scheduled.
    NonDataCapturePipelined,
    /// Naive non-data-capture: the duplicate must win selection and be
    /// allocated a functional unit before its operands (and therefore
    /// the reuse test) are available — a passing test wastes the
    /// allocated unit and the issue slot, which the paper points out
    /// forfeits the bandwidth benefit.
    NonDataCaptureNaive,
}

/// Functional-unit pool sizes.
///
/// Integer ALUs also perform branch-target and memory-address
/// calculations, as on the paper's platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuCounts {
    /// Single-cycle integer ALUs.
    pub int_alu: usize,
    /// Integer multiplier/dividers.
    pub int_mul_div: usize,
    /// FP adders.
    pub fp_add: usize,
    /// FP multiplier/divider/square-root units.
    pub fp_mul_div_sqrt: usize,
}

impl FuCounts {
    /// The paper's baseline: 4 / 2 / 2 / 1.
    #[must_use]
    pub fn paper_baseline() -> Self {
        FuCounts {
            int_alu: 4,
            int_mul_div: 2,
            fp_add: 2,
            fp_mul_div_sqrt: 1,
        }
    }

    /// Doubled ALU capacity (the paper's `DIE-2xALU`): 8 / 4 / 4 / 2.
    #[must_use]
    pub fn doubled(self) -> Self {
        FuCounts {
            int_alu: self.int_alu * 2,
            int_mul_div: self.int_mul_div * 2,
            fp_add: self.fp_add * 2,
            fp_mul_div_sqrt: self.fp_mul_div_sqrt * 2,
        }
    }
}

/// Operation latencies (cycles) and pipelining, SimpleScalar defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyConfig {
    /// Integer ALU operation latency.
    pub int_alu: u64,
    /// Integer multiply latency (pipelined).
    pub int_mul: u64,
    /// Integer divide latency (unpipelined).
    pub int_div: u64,
    /// FP add/compare/convert latency (pipelined).
    pub fp_add: u64,
    /// FP multiply latency (pipelined).
    pub fp_mul: u64,
    /// FP divide latency (unpipelined).
    pub fp_div: u64,
    /// FP square-root latency (unpipelined).
    pub fp_sqrt: u64,
}

impl LatencyConfig {
    /// SimpleScalar `sim-outorder` defaults.
    #[must_use]
    pub fn simplescalar_defaults() -> Self {
        LatencyConfig {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_add: 2,
            fp_mul: 4,
            fp_div: 12,
            fp_sqrt: 24,
        }
    }
}

/// Data-cache port provisioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DcacheConfig {
    /// Accesses (loads at issue + stores at commit) per cycle.
    pub ports: usize,
}

/// The complete machine description.
///
/// [`MachineConfig::paper_baseline`] reproduces the configuration table
/// of the paper's §4; the `with_*` builders derive the seven scaled
/// configurations of Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Instructions fetched per cycle (architected instructions).
    pub fetch_width: usize,
    /// RUU entries dispatched per cycle (copies, in dual modes).
    pub decode_width: usize,
    /// Copies issued to functional units per cycle.
    pub issue_width: usize,
    /// Copies committed per cycle.
    pub commit_width: usize,
    /// Fetch-queue (IFQ) capacity in architected instructions.
    pub fetch_queue: usize,
    /// RUU capacity in entries (a pair costs two).
    pub ruu_size: usize,
    /// Load/store queue capacity (one slot per architected memory op).
    pub lsq_size: usize,
    /// Functional-unit pool sizes.
    pub fu: FuCounts,
    /// Operation latencies.
    pub latency: LatencyConfig,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Data-cache ports.
    pub dcache: DcacheConfig,
    /// Branch direction predictor.
    pub direction: DirectionConfig,
    /// Branch target buffer.
    pub btb: BtbConfig,
    /// Return-address stack depth.
    pub ras_depth: usize,
    /// Cycles from branch resolution to first correct-path fetch.
    pub mispredict_penalty: u64,
    /// Front-end bubble when a predicted-taken branch misses the BTB.
    pub btb_miss_penalty: u64,
    /// Instruction reuse buffer (used by the `*Irb` modes).
    pub irb: IrbConfig,
    /// Duplicate-stream wakeup policy (dual modes).
    pub forwarding: ForwardingPolicy,
    /// Select-logic priority between the streams (dual modes).
    pub issue_policy: IssuePolicy,
    /// Inter-cluster forwarding delay for [`ExecMode::DieCluster`]
    /// (cycles added to the duplicate's view of the pair's single
    /// memory access).
    pub cluster_delay: u64,
    /// Issue-window operand model (when the reuse test can run).
    pub scheduler: SchedulerModel,
    /// Model wrong-path instruction fetch during misprediction
    /// recovery: the front end streams the (wrong) predicted path
    /// through the I-cache until the branch resolves, polluting it.
    /// Off by default — a fidelity ablation; both SIE and DIE pay it.
    pub wrong_path_fetch: bool,
    /// Store-to-load forwarding: a load whose producing store is still
    /// in flight receives the data from the LSQ with a one-cycle
    /// latency instead of a cache access. Off by default (the
    /// conservative model makes the load wait and pay the cache).
    pub stl_forwarding: bool,
    /// Oracle front end: every branch and jump is predicted perfectly
    /// (no recovery stalls, no BTB bubbles). Isolates how much of a
    /// mode's loss is branch-related versus bandwidth-related.
    pub perfect_branch_prediction: bool,
    /// Restrict instruction reuse to long-latency operations (integer
    /// multiply/divide and floating point), reproducing the
    /// prior-work observation the paper's §1 recounts: for a balanced
    /// SIE, reuse only pays on long-latency operations.
    pub reuse_long_latency_only: bool,
    /// Scheduling-loop implementation (host performance only; results
    /// are identical).
    pub engine: SchedEngine,
}

impl MachineConfig {
    /// The paper's baseline machine (§4): 8-wide, 128-entry RUU,
    /// 64-entry LSQ, 4/2/2/1 functional units, tournament predictor,
    /// 1024-entry direct-mapped IRB with 4R/2W/2RW ports.
    #[must_use]
    pub fn paper_baseline() -> Self {
        MachineConfig {
            fetch_width: 8,
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            fetch_queue: 16,
            ruu_size: 128,
            lsq_size: 64,
            fu: FuCounts::paper_baseline(),
            latency: LatencyConfig::simplescalar_defaults(),
            hierarchy: HierarchyConfig::paper_baseline(),
            dcache: DcacheConfig { ports: 2 },
            direction: DirectionConfig::paper_baseline(),
            btb: BtbConfig::paper_baseline(),
            ras_depth: 16,
            mispredict_penalty: 3,
            btb_miss_penalty: 2,
            irb: IrbConfig::paper_baseline(),
            forwarding: ForwardingPolicy::PrimaryToBoth,
            issue_policy: IssuePolicy::ModeDefault,
            cluster_delay: 2,
            scheduler: SchedulerModel::DataCapture,
            wrong_path_fetch: false,
            stl_forwarding: false,
            perfect_branch_prediction: false,
            reuse_long_latency_only: false,
            engine: SchedEngine::EventDriven,
        }
    }

    /// A scaled-down machine for fast unit tests: 4-wide, 32-entry RUU,
    /// tiny caches.
    #[must_use]
    pub fn tiny() -> Self {
        MachineConfig {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            fetch_queue: 8,
            ruu_size: 32,
            lsq_size: 16,
            fu: FuCounts {
                int_alu: 2,
                int_mul_div: 1,
                fp_add: 1,
                fp_mul_div_sqrt: 1,
            },
            latency: LatencyConfig::simplescalar_defaults(),
            hierarchy: HierarchyConfig::tiny(),
            dcache: DcacheConfig { ports: 1 },
            direction: DirectionConfig::Bimodal { entries: 256 },
            btb: BtbConfig { sets: 64, assoc: 2 },
            ras_depth: 8,
            mispredict_penalty: 3,
            btb_miss_penalty: 2,
            irb: IrbConfig {
                entries: 64,
                ..IrbConfig::paper_baseline()
            },
            forwarding: ForwardingPolicy::PrimaryToBoth,
            issue_policy: IssuePolicy::ModeDefault,
            cluster_delay: 2,
            scheduler: SchedulerModel::DataCapture,
            wrong_path_fetch: false,
            stl_forwarding: false,
            perfect_branch_prediction: false,
            reuse_long_latency_only: false,
            engine: SchedEngine::EventDriven,
        }
    }

    /// Figure 2's `2xALU` knob: doubles every functional-unit pool.
    #[must_use]
    pub fn with_double_alus(mut self) -> Self {
        self.fu = self.fu.doubled();
        self
    }

    /// Figure 2's `2xRUU` knob: doubles the RUU and LSQ.
    #[must_use]
    pub fn with_double_ruu(mut self) -> Self {
        self.ruu_size *= 2;
        self.lsq_size *= 2;
        self
    }

    /// Figure 2's `2xWidths` knob: doubles fetch/decode/issue/commit
    /// widths (and the fetch queue to feed them).
    #[must_use]
    pub fn with_double_widths(mut self) -> Self {
        self.fetch_width *= 2;
        self.decode_width *= 2;
        self.issue_width *= 2;
        self.commit_width *= 2;
        self.fetch_queue *= 2;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any width or capacity is zero, or the IRB geometry is
    /// invalid.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0, "fetch width must be positive");
        assert!(self.decode_width > 0, "decode width must be positive");
        assert!(self.issue_width > 0, "issue width must be positive");
        assert!(self.commit_width > 0, "commit width must be positive");
        assert!(self.ruu_size >= 2, "RUU must hold at least one pair");
        assert!(self.lsq_size > 0, "LSQ must be non-empty");
        assert!(self.fu.int_alu > 0, "at least one integer ALU is required");
        assert!(
            self.dcache.ports > 0,
            "at least one d-cache port is required"
        );
        self.irb.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_section_4_table() {
        let c = MachineConfig::paper_baseline();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.ruu_size, 128);
        assert_eq!(c.lsq_size, 64);
        assert_eq!(c.fu.int_alu, 4);
        assert_eq!(c.fu.int_mul_div, 2);
        assert_eq!(c.fu.fp_add, 2);
        assert_eq!(c.fu.fp_mul_div_sqrt, 1);
        assert_eq!(c.irb.entries, 1024);
        c.validate();
    }

    #[test]
    fn figure2_knobs_scale_the_right_resources() {
        let base = MachineConfig::paper_baseline();
        let alu = base.clone().with_double_alus();
        assert_eq!(alu.fu.int_alu, 8);
        assert_eq!(alu.ruu_size, base.ruu_size);
        let ruu = base.clone().with_double_ruu();
        assert_eq!(ruu.ruu_size, 256);
        assert_eq!(ruu.lsq_size, 128);
        assert_eq!(ruu.issue_width, base.issue_width);
        let widths = base.clone().with_double_widths();
        assert_eq!(widths.issue_width, 16);
        assert_eq!(widths.fu, base.fu);
        let all = base
            .with_double_alus()
            .with_double_ruu()
            .with_double_widths();
        assert_eq!(
            (all.fu.int_alu, all.ruu_size, all.commit_width),
            (8, 256, 16)
        );
    }

    #[test]
    fn mode_predicates() {
        assert!(ExecMode::Die.is_dual());
        assert!(ExecMode::DieIrb.is_dual());
        assert!(ExecMode::DieCluster.is_dual());
        assert!(!ExecMode::Sie.is_dual());
        assert!(!ExecMode::SieIrb.is_dual());
        assert!(ExecMode::DieIrb.has_irb());
        assert!(ExecMode::SieIrb.has_irb());
        assert!(!ExecMode::Die.has_irb());
        assert!(!ExecMode::DieCluster.has_irb());
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn validate_rejects_tiny_ruu() {
        let mut c = MachineConfig::tiny();
        c.ruu_size = 1;
        c.validate();
    }
}
