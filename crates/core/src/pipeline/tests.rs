use super::*;
use crate::config::{MachineConfig, SchedulerModel};
use redsim_isa::asm::assemble;

fn run(src: &str, mode: ExecMode) -> SimStats {
    let p = assemble(src).expect("assemble");
    Simulator::new(MachineConfig::tiny(), mode)
        .run_program(&p)
        .expect("run")
}

fn run_cfg(src: &str, mode: ExecMode, cfg: MachineConfig) -> SimStats {
    let p = assemble(src).expect("assemble");
    Simulator::new(cfg, mode).run_program(&p).expect("run")
}

/// A loop whose body is a chain of truly dependent single-cycle adds:
/// sustained IPC must stay near 1 in SIE (the loop keeps the I-cache
/// warm so the dependence chain, not cold fetch misses, dominates).
fn serial_chain(iters: usize) -> String {
    let mut s = format!("main: li s0, {iters}\nloop:\n");
    for _ in 0..16 {
        s.push_str(" addi t0, t0, 1\n");
    }
    s.push_str(" addi s0, s0, -1\n bnez s0, loop\n halt\n");
    s
}

/// A loop of independent adds across registers: IPC limited by the ALU
/// count, not by dependences.
fn parallel_adds(iters: usize) -> String {
    let mut s = format!("main: li s0, {iters}\nloop:\n");
    for _ in 0..4 {
        s.push_str(" addi t0, t0, 1\n addi t1, t1, 1\n addi t2, t2, 1\n addi t3, t3, 1\n");
    }
    s.push_str(" addi s0, s0, -1\n bnez s0, loop\n halt\n");
    s
}

/// Committed-path length of a program (the emulator's ground truth).
fn trace_len(src: &str) -> u64 {
    let p = assemble(src).expect("assemble");
    let mut emu = redsim_isa::emu::Emulator::new(&p);
    emu.run(10_000_000).expect("emulate")
}

#[test]
fn sie_commits_every_instruction_exactly_once() {
    let stats = run(
        "main: li a0, 3\n li a1, 4\n add a2, a0, a1\n halt\n",
        ExecMode::Sie,
    );
    assert_eq!(stats.committed_insts, 4);
    assert_eq!(stats.committed_copies, 4);
    assert_eq!(stats.pairs_checked, 0, "no pairs in SIE");
}

#[test]
fn die_commits_two_copies_per_instruction() {
    let stats = run(
        "main: li a0, 3\n li a1, 4\n add a2, a0, a1\n halt\n",
        ExecMode::Die,
    );
    assert_eq!(stats.committed_insts, 4);
    assert_eq!(stats.committed_copies, 8);
    assert!(
        stats.pairs_checked >= 3,
        "value-producing pairs are checked"
    );
    assert_eq!(stats.pair_mismatches, 0, "fault-free run never mismatches");
}

#[test]
fn serial_chain_ipc_is_at_most_one() {
    let stats = run(&serial_chain(300), ExecMode::Sie);
    let ipc = stats.ipc();
    assert!(ipc <= 1.2, "dependence chain pins IPC near 1, got {ipc}");
    assert!(ipc > 0.85, "chain should stay near IPC 1, got {ipc}");
}

#[test]
fn parallel_work_is_limited_by_alu_count() {
    // tiny() has 2 integer ALUs and issue width 4.
    let stats = run(&parallel_adds(200), ExecMode::Sie);
    let ipc = stats.ipc();
    assert!(ipc <= 2.1, "2 ALUs cap IPC at 2, got {ipc}");
    assert!(
        ipc > 1.6,
        "independent work should saturate the ALUs, got {ipc}"
    );
}

#[test]
fn die_halves_alu_limited_throughput() {
    let sie = run(&parallel_adds(200), ExecMode::Sie);
    let die = run(&parallel_adds(200), ExecMode::Die);
    assert!(
        die.ipc() < sie.ipc() * 0.65,
        "DIE must roughly halve ALU-bound IPC: sie={} die={}",
        sie.ipc(),
        die.ipc()
    );
}

#[test]
fn doubling_alus_recovers_die_throughput() {
    let die = run(&parallel_adds(200), ExecMode::Die);
    let die2x = run_cfg(
        &parallel_adds(200),
        ExecMode::Die,
        MachineConfig::tiny().with_double_alus(),
    );
    assert!(
        die2x.ipc() > die.ipc() * 1.3,
        "2xALU must lift ALU-bound DIE: die={} die2x={}",
        die.ipc(),
        die2x.ipc()
    );
}

#[test]
fn die_irb_recovers_alu_bandwidth_on_reusable_work() {
    // An outer loop that recomputes the same inner values every
    // iteration: classic instruction reuse. The duplicate stream should
    // ride the IRB after the first iteration.
    let src = r#"
    main:
        li s0, 60            # outer trip count
    outer:
        li t0, 1
        li t1, 2
        add t2, t0, t1
        add t3, t2, t1
        xor t4, t2, t3
        and t5, t4, t3
        or  t6, t5, t0
        addi s0, s0, -1
        bnez s0, outer
        halt
    "#;
    let die = run(src, ExecMode::Die);
    let die_irb = run(src, ExecMode::DieIrb);
    assert!(die_irb.fu_bypasses > 0, "reuse must fire");
    assert!(
        die_irb.ipc() >= die.ipc(),
        "IRB must not slow DIE down: die={} die_irb={}",
        die.ipc(),
        die_irb.ipc()
    );
    assert!(
        die_irb.irb.buffer.hit_rate() > 0.5,
        "tight loop should hit the IRB often, got {}",
        die_irb.irb.buffer.hit_rate()
    );
}

#[test]
fn die_irb_never_commits_wrong_counts() {
    let src = serial_chain(100);
    let n = trace_len(&src);
    let die_irb = run(&src, ExecMode::DieIrb);
    assert_eq!(die_irb.committed_insts, n);
    assert_eq!(die_irb.committed_copies, 2 * n);
}

#[test]
fn reuse_test_fails_when_operands_change() {
    // The add's operand changes every iteration: the IRB hits on PC but
    // the reuse test must fail each time (operand mismatch).
    let src = r#"
    main:
        li s0, 50
    loop:
        add s1, s1, s0       # s1 changes every iteration
        addi s0, s0, -1
        bnez s0, loop
        halt
    "#;
    let stats = run(src, ExecMode::DieIrb);
    assert!(
        stats.irb.reuse_failed > 30,
        "changing operands must fail the reuse test, failed={}",
        stats.irb.reuse_failed
    );
}

#[test]
fn branch_mispredictions_cost_cycles() {
    // A data-dependent unpredictable-ish branch pattern vs a fixed one.
    let predictable = r#"
    main:
        li s0, 200
    loop:
        addi s0, s0, -1
        bnez s0, loop
        halt
    "#;
    let stats = run(predictable, ExecMode::Sie);
    assert!(
        stats.branches.cond_mispredicts <= 4,
        "loop branch must be learned, got {}",
        stats.branches.cond_mispredicts
    );
}

#[test]
fn memory_dependences_are_respected_in_timing() {
    // store then load same address: the load's completion must follow
    // the store's issue; functionally the value is always right, but the
    // run must terminate with all instructions committed.
    let src = r#"
        .data
    buf: .space 8
        .text
    main:
        la s0, buf
        li t0, 123
        sd t0, 0(s0)
        ld t1, 0(s0)
        puti t1
        halt
    "#;
    for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
        let stats = run(src, mode);
        assert_eq!(stats.committed_insts, 6, "{mode:?}");
    }
}

#[test]
fn runs_are_deterministic() {
    let src = serial_chain(120);
    let a = run(&src, ExecMode::DieIrb);
    let b = run(&src, ExecMode::DieIrb);
    assert_eq!(a, b);
}

#[test]
fn sie_irb_bypasses_without_duplication() {
    let src = r#"
    main:
        li s0, 40
    outer:
        li t0, 7
        li t1, 9
        add t2, t0, t1
        mul t3, t0, t1
        addi s0, s0, -1
        bnez s0, outer
        halt
    "#;
    let stats = run(src, ExecMode::SieIrb);
    assert!(stats.fu_bypasses > 0, "SIE-IRB must reuse");
    assert_eq!(stats.committed_copies, stats.committed_insts);
}

#[test]
fn fp_heavy_code_contends_for_fp_units() {
    let src = r#"
    main:
        li s0, 30
        li t0, 3
        fcvt.d.l f1, t0
    loop:
        fmul.d f2, f1, f1
        fmul.d f3, f1, f1
        fadd.d f4, f2, f3
        addi s0, s0, -1
        bnez s0, loop
        putf f4
        halt
    "#;
    let sie = run(src, ExecMode::Sie);
    let die = run(src, ExecMode::Die);
    // tiny() has one fp-mul unit: duplication must hurt.
    assert!(die.cycles > sie.cycles);
}

#[test]
fn unpipelined_divider_serializes() {
    let src = r#"
    main:
        li t0, 1000
        li t1, 7
        div t2, t0, t1
        div t3, t0, t1
        div t4, t0, t1
        halt
    "#;
    let stats = run(src, ExecMode::Sie);
    // 3 divides at 20 cycles on one unpipelined unit: at least 60 cycles.
    assert!(stats.cycles >= 60, "got {}", stats.cycles);
}

#[test]
fn fault_free_runs_report_no_faults() {
    let stats = run(&serial_chain(50), ExecMode::Die);
    assert_eq!(stats.faults.detected, 0);
    assert_eq!(stats.faults.escaped, 0);
    assert_eq!(stats.faults.injected_fu, 0);
}

#[test]
fn die_detects_fu_faults_and_recovers() {
    let p = assemble(&serial_chain(400)).unwrap();
    let stats = Simulator::new(MachineConfig::tiny(), ExecMode::Die)
        .try_with_faults(FaultConfig {
            fu_rate: 0.02,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&p)
        .expect("run");
    assert!(stats.faults.injected_fu > 0, "faults must fire");
    assert!(stats.faults.detected > 0, "DIE must detect them");
    assert_eq!(stats.faults.silent_sie, 0);
    assert_eq!(
        stats.committed_insts,
        trace_len(&serial_chain(400)),
        "rewinds must not lose instructions"
    );
    assert_eq!(stats.pair_mismatches, stats.faults.detected);
}

#[test]
fn sie_suffers_silent_corruption_under_the_same_faults() {
    let p = assemble(&serial_chain(400)).unwrap();
    let stats = Simulator::new(MachineConfig::tiny(), ExecMode::Sie)
        .try_with_faults(FaultConfig {
            fu_rate: 0.02,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&p)
        .expect("run");
    assert!(stats.faults.injected_fu > 0);
    assert_eq!(stats.faults.detected, 0, "SIE has no checker");
    assert!(stats.faults.silent_sie > 0, "corruption goes silent");
}

#[test]
fn irb_strikes_are_detected_at_commit() {
    // High reuse + constant IRB strikes: corrupted buffered results that
    // get reused must be exposed by the commit comparison against the
    // primary's ALU execution (§3.4).
    let src = r#"
    main:
        li s0, 300
    outer:
        li t0, 1
        li t1, 2
        add t2, t0, t1
        add t3, t2, t1
        addi s0, s0, -1
        bnez s0, outer
        halt
    "#;
    let p = assemble(src).unwrap();
    let stats = Simulator::new(MachineConfig::tiny(), ExecMode::DieIrb)
        .try_with_faults(FaultConfig {
            irb_rate: 0.8,
            seed: 42,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&p)
        .expect("run");
    assert!(stats.faults.injected_irb > 0, "IRB strikes must land");
    assert!(
        stats.faults.detected > 0,
        "a reused corrupt result must mismatch the primary's execution"
    );
    assert_eq!(stats.committed_insts, 1802);
}

#[test]
fn common_mode_forwarding_faults_escape_primary_to_both() {
    // Figure 6(c): a strike on the shared forwarding bus feeds both
    // streams the same wrong operand; the copies agree and the fault
    // escapes the sphere of replication.
    let p = assemble(&serial_chain(300)).unwrap();
    let cfg = MachineConfig::tiny(); // forwarding: PrimaryToBoth
    let stats = Simulator::new(cfg, ExecMode::DieIrb)
        .try_with_faults(FaultConfig {
            forward_rate: 0.05,
            seed: 3,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&p)
        .expect("run");
    assert!(stats.faults.injected_forward > 0);
    assert!(stats.faults.escaped > 0, "common-mode faults escape");
    assert_eq!(
        stats.faults.detected, 0,
        "both copies agree on the wrong value"
    );
}

#[test]
fn per_stream_forwarding_faults_are_detected() {
    // Figure 6(b): with per-stream forwarding the same strike corrupts
    // one stream only, so the commit comparison catches it.
    let p = assemble(&serial_chain(300)).unwrap();
    let stats = Simulator::new(MachineConfig::tiny(), ExecMode::Die)
        .try_with_faults(FaultConfig {
            forward_rate: 0.05,
            seed: 3,
            ..FaultConfig::none()
        })
        .expect("valid fault configuration")
        .run_program(&p)
        .expect("run");
    assert!(stats.faults.injected_forward > 0);
    assert!(
        stats.faults.detected > 0,
        "single-stream corruption is caught"
    );
}

#[test]
fn stats_are_internally_consistent() {
    let stats = run(&parallel_adds(100), ExecMode::DieIrb);
    assert_eq!(stats.committed_copies, 2 * stats.committed_insts);
    assert!(stats.fu_issues + stats.fu_bypasses >= stats.committed_copies / 2);
    assert!(stats.active_commit_cycles <= stats.cycles);
    assert!(stats.irb.buffer.pc_hits <= stats.irb.buffer.lookups);
    assert!(stats.avg_ruu_occupancy() <= MachineConfig::tiny().ruu_size as f64);
}

#[test]
fn empty_program_runs_and_reports_zero() {
    let p = assemble("main: halt\n").unwrap();
    let stats = Simulator::new(MachineConfig::tiny(), ExecMode::Sie)
        .run_program(&p)
        .unwrap();
    assert_eq!(stats.committed_insts, 1);
    assert!(stats.cycles > 0);
}

#[test]
fn ipc_ordering_sie_geq_dieirb_geq_die_on_mixed_code() {
    // The paper's headline ordering on a workload with both reusable
    // and non-reusable duplicate work.
    let src = r#"
        .data
    arr: .space 256
        .text
    main:
        li s0, 80
        la s1, arr
    outer:
        li t0, 5
        li t1, 6
        add t2, t0, t1
        mul t3, t0, t1
        ld t4, 0(s1)
        add t5, t4, t2
        sd t5, 8(s1)
        xor t6, t3, t5
        addi s0, s0, -1
        bnez s0, outer
        halt
    "#;
    let sie = run(src, ExecMode::Sie);
    let die = run(src, ExecMode::Die);
    let die_irb = run(src, ExecMode::DieIrb);
    assert!(sie.ipc() >= die_irb.ipc() * 0.99, "SIE is the ceiling");
    assert!(
        die_irb.ipc() >= die.ipc(),
        "DIE-IRB must sit between DIE and SIE: sie={} die_irb={} die={}",
        sie.ipc(),
        die_irb.ipc(),
        die.ipc()
    );
}

#[test]
fn clustered_die_avoids_fu_contention() {
    // ALU-bound independent work: plain DIE halves throughput, but a
    // replicated duplicate cluster should track SIE closely.
    let src = parallel_adds(200);
    let sie = run(&src, ExecMode::Sie);
    let die = run(&src, ExecMode::Die);
    let clustered = run(&src, ExecMode::DieCluster);
    assert!(
        clustered.ipc() > die.ipc() * 1.2,
        "replicated FUs must relieve the contention: die={} cluster={}",
        die.ipc(),
        clustered.ipc()
    );
    assert!(
        clustered.ipc() <= sie.ipc() * 1.02,
        "a cluster cannot beat SIE: sie={} cluster={}",
        sie.ipc(),
        clustered.ipc()
    );
    assert_eq!(clustered.committed_insts, trace_len(&src));
}

#[test]
fn cluster_delay_slows_load_dependent_duplicates() {
    let src = r#"
        .data
    buf: .space 256
        .text
    main:
        la s0, buf
        li s1, 200
    loop:
        ld t0, 0(s0)
        add t1, t0, t0
        sd t1, 8(s0)
        addi s1, s1, -1
        bnez s1, loop
        halt
    "#;
    let mut fast = MachineConfig::tiny();
    fast.cluster_delay = 0;
    let mut slow = MachineConfig::tiny();
    slow.cluster_delay = 12;
    let p = assemble(src).unwrap();
    let f = Simulator::new(fast, ExecMode::DieCluster)
        .run_program(&p)
        .unwrap();
    let s = Simulator::new(slow, ExecMode::DieCluster)
        .run_program(&p)
        .unwrap();
    assert!(
        s.cycles > f.cycles,
        "inter-cluster latency must cost cycles: fast={} slow={}",
        f.cycles,
        s.cycles
    );
}

#[test]
fn scheduler_models_order_as_section_3_3_argues() {
    // Reusable work: data-capture bypass (free) should beat the
    // pipelined non-data-capture variant (reuse test one cycle late),
    // which should beat the naive variant (reuse saves no bandwidth).
    let src = r#"
    main:
        li s0, 150
    outer:
        li t0, 3
        li t1, 4
        add t2, t0, t1
        add t3, t2, t1
        xor t4, t2, t3
        or  t5, t4, t0
        addi s0, s0, -1
        bnez s0, outer
        halt
    "#;
    let p = assemble(src).unwrap();
    let run_sched = |m: SchedulerModel| {
        let mut cfg = MachineConfig::tiny();
        cfg.scheduler = m;
        Simulator::new(cfg, ExecMode::DieIrb)
            .run_program(&p)
            .unwrap()
    };
    let dc = run_sched(SchedulerModel::DataCapture);
    let pipe = run_sched(SchedulerModel::NonDataCapturePipelined);
    let naive = run_sched(SchedulerModel::NonDataCaptureNaive);
    assert!(dc.fu_bypasses > 0 && pipe.fu_bypasses > 0 && naive.fu_bypasses > 0);
    assert!(
        dc.ipc() >= pipe.ipc(),
        "data-capture cannot lose to the delayed test: dc={} pipe={}",
        dc.ipc(),
        pipe.ipc()
    );
    assert!(
        pipe.ipc() >= naive.ipc(),
        "wasting FUs cannot win: pipe={} naive={}",
        pipe.ipc(),
        naive.ipc()
    );
    // The naive variant burns a functional unit per bypass.
    assert!(naive.fu_issues > dc.fu_issues);
    // All three commit identically.
    assert_eq!(dc.committed_insts, naive.committed_insts);
}

#[test]
fn ruu_full_stalls_are_counted() {
    // A serial divider chain at the head of the in-order commit stream
    // backs the whole window up (looped, so the I-cache stays warm and
    // fetch keeps feeding the RUU).
    let mut src = String::from("main: li t0, 1000000\n li t1, 3\n li s0, 40\nloop:\n");
    src.push_str(" div t2, t0, t1\n div t3, t2, t1\n");
    for _ in 0..12 {
        src.push_str(" addi t4, t4, 1\n");
    }
    src.push_str(" addi s0, s0, -1\n bnez s0, loop\n halt\n");
    let stats = run(&src, ExecMode::Die);
    assert!(
        stats.dispatch_stalls_ruu > 0,
        "a 32-entry RUU must fill behind 20-cycle divides"
    );
}

#[test]
fn lsq_full_stalls_are_counted() {
    // More outstanding memory ops than the tiny 16-entry LSQ holds.
    let mut src =
        String::from(".data\nbuf: .space 4096\n.text\nmain: la s0, buf\n li s1, 30\nloop:\n");
    for i in 0..24 {
        src.push_str(&format!(" sd t0, {}(s0)\n", i * 8));
    }
    src.push_str(" addi s1, s1, -1\n bnez s1, loop\n halt\n");
    let stats = run(&src, ExecMode::Sie);
    assert!(
        stats.dispatch_stalls_lsq > 0,
        "24 in-flight stores must fill a 16-entry LSQ"
    );
}

#[test]
fn icache_misses_stall_fetch_on_large_footprints() {
    // A straight-line program much larger than the 1 KB tiny L1I.
    let mut src = String::from("main:\n");
    for _ in 0..600 {
        src.push_str(" addi t0, t0, 1\n");
    }
    src.push_str(" halt\n");
    let stats = run(&src, ExecMode::Sie);
    assert!(stats.fetch_stalls_icache > 0);
    assert!(stats.l1i.misses() > 100, "4.8KB of code through a 1KB L1I");
}

#[test]
fn emulator_faults_propagate_as_sim_errors() {
    let p = assemble("main: li t0, 4\n ld t1, 0(t0)\n halt\n").unwrap();
    let err = Simulator::new(MachineConfig::tiny(), ExecMode::Sie)
        .run_program(&p)
        .unwrap_err();
    assert!(matches!(err, SimError::Emu(_)), "{err}");
    assert!(err.to_string().contains("bad memory address"), "{err}");
}

#[test]
fn budget_exhaustion_propagates() {
    let p = assemble("spin: j spin\n").unwrap();
    let err = Simulator::new(MachineConfig::tiny(), ExecMode::Sie)
        .with_budget(1000)
        .run_program(&p)
        .unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
}

#[test]
fn stats_source_trait_object_compatible() {
    // run_source takes &mut dyn InstructionSource — exercise with both
    // source kinds behind the trait.
    use crate::source::{EmulatorSource, VecSource};
    let p = assemble("main: li a0, 1\n halt\n").unwrap();
    let cfg = MachineConfig::tiny();
    let mut emu_src = EmulatorSource::new(&p, 100);
    let a = Simulator::new(cfg.clone(), ExecMode::Sie)
        .run_source(&mut emu_src)
        .unwrap();
    let trace = redsim_isa::emu::Emulator::new(&p).run_trace(100).unwrap();
    let mut vec_src = VecSource::new(trace);
    let b = Simulator::new(cfg, ExecMode::Sie)
        .run_source(&mut vec_src)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn per_stream_forwarding_ablation_changes_timing_not_function() {
    let src = serial_chain(80);
    let n = trace_len(&src);
    let p = assemble(&src).unwrap();
    let mut cfg = MachineConfig::tiny();
    cfg.forwarding = crate::config::ForwardingPolicy::PerStream;
    let stats = Simulator::new(cfg, ExecMode::DieIrb)
        .run_program(&p)
        .unwrap();
    assert_eq!(stats.committed_insts, n);
}

#[test]
fn irb_sizes_are_monotone_enough() {
    // Larger IRBs can shuffle timing slightly but must not collapse.
    let src = r#"
    main:
        li s0, 100
    o:  li t0, 1
        li t1, 2
        add t2, t0, t1
        addi s0, s0, -1
        bnez s0, o
        halt
    "#;
    let p = assemble(src).unwrap();
    let ipc_at = |entries: usize| {
        let mut cfg = MachineConfig::tiny();
        cfg.irb.entries = entries;
        Simulator::new(cfg, ExecMode::DieIrb)
            .run_program(&p)
            .unwrap()
            .ipc()
    };
    let small = ipc_at(16);
    let big = ipc_at(1024);
    assert!(big >= small * 0.95, "16: {small}, 1024: {big}");
}

#[test]
fn zero_dcache_port_config_is_rejected() {
    let mut cfg = MachineConfig::tiny();
    cfg.dcache.ports = 0;
    let r = std::panic::catch_unwind(|| Simulator::new(cfg, ExecMode::Sie));
    assert!(r.is_err(), "validation must reject zero d-cache ports");
}

#[test]
fn wrong_path_fetch_pollutes_the_icache() {
    // An unpredictable branch pattern with a large taken-side target:
    // wrong-path streaming must add I-cache traffic.
    let src = r#"
    main:
        li s0, 300
        li s2, 0
    loop:
        andi t0, s0, 5
        beqz t0, far
    near:
        addi s2, s2, 1
        j cont
    far:
        addi s2, s2, 2
    cont:
        addi s0, s0, -1
        bnez s0, loop
        puti s2
        halt
    "#;
    let p = assemble(src).unwrap();
    let base = MachineConfig::tiny();
    let off = Simulator::new(base.clone(), ExecMode::Sie)
        .run_program(&p)
        .unwrap();
    let mut cfg = base;
    cfg.wrong_path_fetch = true;
    let on = Simulator::new(cfg, ExecMode::Sie).run_program(&p).unwrap();
    assert!(
        on.l1i.accesses > off.l1i.accesses,
        "wrong-path streaming must add I-cache accesses: off={} on={}",
        off.l1i.accesses,
        on.l1i.accesses
    );
    assert_eq!(on.committed_insts, off.committed_insts);
}

#[test]
fn stl_forwarding_speeds_store_load_pairs() {
    let src = r#"
        .data
    buf: .space 64
        .text
    main:
        la s0, buf
        li s1, 300
    loop:
        sd s1, 0(s0)
        ld t0, 0(s0)        # immediately reloads the stored value
        add t1, t1, t0
        addi s1, s1, -1
        bnez s1, loop
        halt
    "#;
    let p = assemble(src).unwrap();
    let base = MachineConfig::tiny();
    let slow = Simulator::new(base.clone(), ExecMode::Sie)
        .run_program(&p)
        .unwrap();
    let mut cfg = base;
    cfg.stl_forwarding = true;
    let fast = Simulator::new(cfg, ExecMode::Sie).run_program(&p).unwrap();
    assert!(
        fast.cycles < slow.cycles,
        "forwarding must beat the cache round trip: fwd={} cache={}",
        fast.cycles,
        slow.cycles
    );
    assert_eq!(fast.committed_insts, slow.committed_insts);
}

#[test]
fn perfect_branch_prediction_removes_recovery_stalls() {
    // A data-dependent branch pattern the tiny bimodal cannot learn.
    let src = r#"
    main:
        li s0, 400
        li s4, 12345
    loop:
        li t0, 1103515245
        mul s4, s4, t0
        addi s4, s4, 12345
        srli t1, s4, 16
        andi t1, t1, 1
        beqz t1, even
        addi s2, s2, 3
        j next
    even:
        addi s2, s2, 5
    next:
        addi s0, s0, -1
        bnez s0, loop
        halt
    "#;
    let p = assemble(src).unwrap();
    let real = Simulator::new(MachineConfig::tiny(), ExecMode::Sie)
        .run_program(&p)
        .unwrap();
    let mut cfg = MachineConfig::tiny();
    cfg.perfect_branch_prediction = true;
    let oracle = Simulator::new(cfg, ExecMode::Sie).run_program(&p).unwrap();
    assert!(
        real.branches.cond_mispredicts > 50,
        "pattern must confound bimodal"
    );
    assert_eq!(
        oracle.fetch_stalls_branch, 0,
        "oracle never waits on branches"
    );
    assert!(
        oracle.ipc() > real.ipc() * 1.1,
        "removing mispredicts must pay: real={} oracle={}",
        real.ipc(),
        oracle.ipc()
    );
    assert_eq!(oracle.committed_insts, real.committed_insts);
}

#[test]
fn long_latency_filter_restricts_reuse_to_expensive_ops() {
    // Loop with reusable cheap ALU work and reusable multiplies.
    let src = r#"
    main:
        li s0, 120
    loop:
        li t0, 6
        li t1, 7
        add t2, t0, t1
        mul t3, t0, t1
        addi s0, s0, -1
        bnez s0, loop
        halt
    "#;
    let p = assemble(src).unwrap();
    let all = Simulator::new(MachineConfig::tiny(), ExecMode::DieIrb)
        .run_program(&p)
        .unwrap();
    let mut cfg = MachineConfig::tiny();
    cfg.reuse_long_latency_only = true;
    let filtered = Simulator::new(cfg, ExecMode::DieIrb)
        .run_program(&p)
        .unwrap();
    assert!(filtered.fu_bypasses > 0, "multiplies still reuse");
    assert!(
        filtered.fu_bypasses < all.fu_bypasses / 2,
        "the cheap-op reuse must be gone: all={} filtered={}",
        all.fu_bypasses,
        filtered.fu_bypasses
    );
}

#[test]
fn last_store_map_is_pruned_as_stores_commit() {
    // Dozens of distinct addresses, stored over many loop iterations.
    // Before prune-on-commit the memory-dependence map kept one entry
    // per address ever stored for the life of the run; with pruning,
    // every address's final writer removes its own entry at commit, so
    // the map must be empty once the program drains.
    let mut src =
        String::from(".data\nbuf: .space 4096\n.text\nmain: la s0, buf\n li s1, 40\nloop:\n");
    for i in 0..32 {
        src.push_str(&format!(" sd t0, {}(s0)\n", i * 8));
    }
    src.push_str(" addi s1, s1, -1\n bnez s1, loop\n halt\n");
    let p = assemble(&src).expect("assemble");
    let cfg = MachineConfig::tiny();
    for mode in [ExecMode::Sie, ExecMode::Die] {
        let mut source = EmulatorSource::new(&p, 10_000_000);
        let mut tracer = NullTracer;
        let mut metrics = NullMetrics;
        let mut m = Machine::new(
            &cfg,
            mode,
            FaultConfig::none(),
            None,
            None,
            false,
            Instrumentation {
                tracer: &mut tracer,
                metrics: &mut metrics,
                profiler: None,
            },
        );
        m.run(&mut source).expect("run");
        assert!(
            m.last_store.is_empty(),
            "{mode:?}: {} stale store entries survived commit",
            m.last_store.len()
        );
    }
}

#[test]
fn scan_reference_engine_matches_event_driven() {
    // The retained full-window scan is the oracle for the event-driven
    // scheduler: identical SimStats on dependence-heavy, ILP-heavy and
    // memory-heavy kernels, in every mode.
    let mut mem =
        String::from(".data\nbuf: .space 512\n.text\nmain: la s0, buf\n li s1, 25\nloop:\n");
    for i in 0..8 {
        mem.push_str(&format!(" sd t0, {}(s0)\n ld t1, {}(s0)\n", i * 8, i * 8));
    }
    mem.push_str(" addi s1, s1, -1\n bnez s1, loop\n halt\n");
    for src in [serial_chain(40), parallel_adds(40), mem] {
        let p = assemble(&src).expect("assemble");
        for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
            let mut scan = MachineConfig::tiny();
            scan.engine = SchedEngine::ScanReference;
            let ev = Simulator::new(MachineConfig::tiny(), mode)
                .run_program(&p)
                .expect("event-driven");
            let sc = Simulator::new(scan, mode).run_program(&p).expect("scan");
            assert_eq!(ev, sc, "{mode:?}");
        }
    }
}
