#![warn(missing_docs)]

//! # redsim-core
//!
//! A cycle-level out-of-order superscalar timing model with three
//! execution modes, reproducing the machine studied in *A
//! Complexity-Effective Approach to ALU Bandwidth Enhancement for
//! Instruction-Level Temporal Redundancy* (Parashar, Gurumurthi &
//! Sivasubramaniam, ISCA 2004):
//!
//! * [`ExecMode::Sie`] — **S**ingle **I**nstruction **E**xecution: the
//!   ordinary out-of-order core, the paper's performance ceiling.
//! * [`ExecMode::Die`] — **D**ual **I**nstruction **E**xecution (after
//!   Ray, Hoe & Falsafi): every instruction is duplicated at dispatch,
//!   both copies flow through the shared core independently, and results
//!   are compared at commit. Memory is accessed once per pair; the first
//!   stream to resolve a mispredicted branch triggers recovery.
//! * [`ExecMode::DieIrb`] — the paper's contribution: the duplicate
//!   stream looks up an instruction reuse buffer in parallel with fetch
//!   and, on a passing reuse test, skips the functional units entirely.
//!   With [`ForwardingPolicy::PrimaryToBoth`] the IRB needs no result
//!   forwarding into the issue window — the primary stream's existing
//!   bypass wakes both streams (§3.3).
//! * [`ExecMode::SieIrb`] — classic single-stream instruction reuse
//!   (Sodani & Sohi), kept as the ablation showing why an IRB helps a
//!   DIE core so much more than a balanced SIE core.
//!
//! The model follows SimpleScalar `sim-outorder`'s structure — a unified
//! ROB/issue-window (**RUU**), a load/store queue, explicit functional
//! unit pools, and a front end with a tournament predictor, BTB and
//! return-address stack — driven by the committed-path trace of the
//! `redsim-isa` functional emulator. Wrong-path work is modelled as
//! front-end stall from a detected misprediction until the branch
//! resolves plus a redirect penalty (see `DESIGN.md` for the fidelity
//! discussion).
//!
//! A transient-fault injector ([`fault`]) exercises the redundancy
//! arguments of the paper's §3.4: faults in functional units, in the
//! (unprotected) IRB array, and on the shared forwarding bus.
//!
//! # Examples
//!
//! ```
//! use redsim_core::{ExecMode, MachineConfig, Simulator};
//! use redsim_isa::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble(
//!     "main: li t0, 200\nloop: addi t0, t0, -1\n add t1, t1, t0\n bnez t0, loop\n halt\n",
//! )?;
//! let cfg = MachineConfig::paper_baseline();
//! let sie = Simulator::new(cfg.clone(), ExecMode::Sie).run_program(&p)?;
//! let die = Simulator::new(cfg, ExecMode::Die).run_program(&p)?;
//! assert!(die.ipc() <= sie.ipc(), "duplication cannot speed the core up");
//! # Ok(())
//! # }
//! ```

mod config;
pub mod fault;
mod frontend;
mod fu;
mod irb_unit;
pub mod metrics;
mod pipeline;
mod ruu;
pub mod sched;
mod source;
mod stats;
pub mod trace;

pub use config::{
    DcacheConfig, ExecMode, ForwardingPolicy, FuCounts, IssuePolicy, LatencyConfig, MachineConfig,
    SchedEngine, SchedulerModel,
};
pub use fault::{
    FaultConfig, FaultConfigError, FaultLifecycle, FaultOutcome, FaultRecord, FaultSite, FaultStats,
};
pub use metrics::{
    Histogram, HostPhase, HostProfiler, Metric, MetricsCollector, MetricsRegistry, MetricsSink,
    NullMetrics, WindowCounters, WindowSample, DEFAULT_METRICS_WINDOW,
};
pub use pipeline::{Instrumentation, SimError, Simulator, ATTRIBUTION_TOP_K};
pub use redsim_irb::{
    AttrCounters, LoopSite, PcSite, ReuseAttribution, REUSE_CLASSES, REUSE_CLASS_NAMES,
};
pub use source::{ArcSource, EmulatorSource, InstructionSource, SliceSource, VecSource};
pub use stats::{
    attribution_to_json, FetchStallKind, IrbSummary, SimStats, StallBreakdown, StallSummary,
    Throughput,
};
pub use trace::{
    chrome_trace, EventLog, FlightRecorder, NullTracer, TraceEvent, TraceEventKind, Tracer,
};
