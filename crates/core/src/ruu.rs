//! The Register Update Unit: SimpleScalar's unified ROB + issue window.

use std::collections::VecDeque;

use redsim_irb::IrbEntry;
use redsim_isa::trace::DynInst;

/// Which redundant stream a RUU entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// The primary stream — always executes on the functional units.
    Primary,
    /// The duplicate stream — the candidate for IRB service.
    Dup,
}

/// Scheduling state of one RUU entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Waiting for `deps_remaining` producers to broadcast.
    Waiting,
    /// All operands available; contending for issue (or for the reuse
    /// test, for IRB-hit duplicates).
    Ready,
    /// Executing; completes at `complete_at`.
    Issued,
    /// A duplicate load whose address work is done (or bypassed) but
    /// whose data awaits the pair's single shared memory access.
    WaitingPair,
    /// Result produced (broadcast done, for producers).
    Done,
}

/// The IRB interaction of a duplicate entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseState {
    /// Not a candidate (SIE/DIE entry, or ineligible opcode).
    NotEligible,
    /// Lookup performed, PC missed.
    PcMiss,
    /// Lookup could not get an IRB read port this cycle.
    PortStarved,
    /// PC hit; entry rides along awaiting the reuse test.
    Hit(IrbEntry),
    /// Reuse test passed — the entry bypassed the functional units.
    Passed,
    /// Reuse test failed — executed on the functional units.
    Failed,
}

/// One RUU entry: a single copy of a dynamic instruction.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The committed-path record this entry is a copy of.
    pub di: DynInst,
    /// Primary or duplicate stream.
    pub stream: Stream,
    /// Scheduling state.
    pub state: EntryState,
    /// Producers still outstanding.
    pub deps_remaining: usize,
    /// Absolute seqs of in-flight consumers to wake on broadcast.
    pub consumers: Vec<u64>,
    /// Completion (result broadcast) cycle, once known.
    pub complete_at: Option<u64>,
    /// IRB interaction (duplicates in DIE-IRB, all insts in SIE-IRB).
    pub reuse: ReuseState,
    /// Earliest cycle the IRB lookup result is available.
    pub lookup_done_at: u64,
    /// Cycle the entry last became [`EntryState::Ready`] (drives the
    /// non-data-capture reuse-test timing).
    pub ready_at: u64,
    /// `true` once the entry has consumed a functional unit.
    pub executed_on_fu: bool,
    /// Result bits this copy produced (possibly fault-corrupted); the
    /// commit-stage comparator checks primary vs duplicate.
    pub out_bits: Option<u64>,
    /// `true` if a fault was injected anywhere on this copy's path.
    pub fault_tainted: bool,
    /// XOR mask accumulated from corrupted operand forwarding; a
    /// non-zero mask propagates into this copy's produced bits.
    pub input_corrupt: u64,
    /// Ids (into the injector's ledger) of the faults riding on this
    /// copy; resolved to a terminal outcome at commit or rewind. Empty
    /// in fault-free runs, so it never allocates on the common path.
    pub fault_ids: Vec<u32>,
    /// For mispredicted control instructions: resolution already
    /// reported to the front end.
    pub resolution_reported: bool,
}

impl Entry {
    /// Creates a freshly dispatched entry.
    #[must_use]
    pub fn new(di: DynInst, stream: Stream) -> Self {
        Entry {
            di,
            stream,
            state: EntryState::Waiting,
            deps_remaining: 0,
            consumers: Vec::new(),
            complete_at: None,
            reuse: ReuseState::NotEligible,
            lookup_done_at: 0,
            ready_at: 0,
            executed_on_fu: false,
            out_bits: None,
            fault_tainted: false,
            input_corrupt: 0,
            fault_ids: Vec::new(),
            resolution_reported: false,
        }
    }

    /// The clean (fault-free) architectural check value of this copy:
    /// the register result, the effective address for memory ops, or
    /// the encoded control outcome for branches/jumps.
    #[must_use]
    pub fn clean_check_bits(&self) -> Option<u64> {
        checked_bits(&self.di)
    }

    /// `true` once the entry's result is final (commit-ready).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == EntryState::Done
    }
}

/// The architectural check value of a dynamic instruction, as the DIE
/// commit comparator sees it (§2.1).
///
/// Memory instructions are checked on the redundantly-computed piece —
/// the effective address (the single shared data-cache access is outside
/// the comparison; stores additionally fold the data value in). Control
/// instructions are checked on their encoded outcome; everything else on
/// the destination value.
#[must_use]
pub fn checked_bits(di: &DynInst) -> Option<u64> {
    if di.inst.op.is_load() {
        return di.ea;
    }
    if di.inst.op.is_store() {
        // Fold address and store data into one comparator word.
        return di.ea.map(|ea| ea ^ di.src2.rotate_left(32));
    }
    if let Some(c) = di.control {
        return Some(c.target | u64::from(c.taken) << 63);
    }
    di.result
}

/// The RUU: a bounded FIFO of entries addressed by absolute sequence
/// number (entries never leave out of order — the committed-path trace
/// contains no wrong-path work to squash).
#[derive(Debug, Default)]
pub struct Ruu {
    entries: VecDeque<Entry>,
    /// Absolute seq of `entries[0]`.
    base: u64,
    capacity: usize,
}

impl Ruu {
    /// Creates an empty RUU with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Ruu {
            entries: VecDeque::with_capacity(capacity),
            base: 0,
            capacity,
        }
    }

    /// Free slots.
    #[must_use]
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Absolute seq the next pushed entry will receive.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Absolute seq of the oldest entry.
    #[must_use]
    pub fn head_seq(&self) -> u64 {
        self.base
    }

    /// Pushes an entry, returning its absolute seq.
    ///
    /// # Panics
    ///
    /// Panics if the RUU is full — dispatch must check [`Ruu::free`].
    #[inline]
    pub fn push(&mut self, entry: Entry) -> u64 {
        assert!(self.entries.len() < self.capacity, "RUU overflow");
        let seq = self.next_seq();
        self.entries.push_back(entry);
        seq
    }

    /// Pops the oldest entry (commit).
    ///
    /// # Panics
    ///
    /// Panics if the RUU is empty.
    pub fn pop(&mut self) -> Entry {
        let e = self.entries.pop_front().expect("RUU underflow");
        self.base += 1;
        e
    }

    /// The entry with absolute seq `seq`, if still in flight.
    #[inline]
    #[must_use]
    pub fn get(&self, seq: u64) -> Option<&Entry> {
        let idx = seq.checked_sub(self.base)?;
        self.entries.get(idx as usize)
    }

    /// Mutable access by absolute seq.
    #[inline]
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut Entry> {
        let idx = seq.checked_sub(self.base)?;
        self.entries.get_mut(idx as usize)
    }

    /// Iterates `(seq, entry)` oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Entry)> {
        self.entries
            .iter()
            .enumerate()
            .map(move |(i, e)| (self.base + i as u64, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_isa::trace::ControlOutcome;
    use redsim_isa::Inst;

    fn di(seq: u64) -> DynInst {
        DynInst {
            seq,
            pc: 0x1000 + seq * 8,
            inst: Inst::NOP,
            src1: 0,
            src2: 0,
            result: None,
            ea: None,
            control: None,
            next_pc: 0x1008 + seq * 8,
        }
    }

    #[test]
    fn seq_addressing_survives_pops() {
        let mut r = Ruu::new(4);
        let s0 = r.push(Entry::new(di(0), Stream::Primary));
        let s1 = r.push(Entry::new(di(1), Stream::Primary));
        assert_eq!((s0, s1), (0, 1));
        r.pop();
        assert!(r.get(s0).is_none(), "committed entries are gone");
        assert_eq!(r.get(s1).unwrap().di.seq, 1);
        let s2 = r.push(Entry::new(di(2), Stream::Primary));
        assert_eq!(s2, 2);
        assert_eq!(r.head_seq(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut r = Ruu::new(2);
        r.push(Entry::new(di(0), Stream::Primary));
        assert_eq!(r.free(), 1);
        r.push(Entry::new(di(1), Stream::Dup));
        assert_eq!(r.free(), 0);
    }

    #[test]
    #[should_panic(expected = "RUU overflow")]
    fn overflow_panics() {
        let mut r = Ruu::new(1);
        r.push(Entry::new(di(0), Stream::Primary));
        r.push(Entry::new(di(1), Stream::Primary));
    }

    #[test]
    fn checked_bits_covers_each_instruction_kind() {
        use redsim_isa::{IntReg, Opcode};
        let mut d = di(0);
        assert_eq!(checked_bits(&d), None, "nop checks nothing");
        d.control = Some(ControlOutcome {
            taken: true,
            target: 0x2000,
        });
        assert_eq!(checked_bits(&d), Some(0x2000 | 1 << 63));
        d.control = None;
        d.result = Some(42);
        assert_eq!(checked_bits(&d), Some(42), "alu checks the result");

        // Control outcome takes precedence over a link-register result
        // (jal is checked on its encoded outcome, like the pipeline).
        d.control = Some(ControlOutcome {
            taken: true,
            target: 0x40,
        });
        assert_eq!(checked_bits(&d), Some(0x40 | 1 << 63));

        // A load is checked on its redundantly computed address, not on
        // the singly-fetched data value.
        let mut ld = di(1);
        ld.inst = Inst::load_int(Opcode::Ld, IntReg::new(1), IntReg::new(2), 0);
        ld.ea = Some(0x3000);
        ld.result = Some(777);
        assert_eq!(checked_bits(&ld), Some(0x3000));

        // A store folds address and data.
        let mut st = di(2);
        st.inst = Inst::store_int(Opcode::Sd, IntReg::new(1), IntReg::new(2), 0);
        st.ea = Some(0x3000);
        st.src2 = 5;
        assert_eq!(checked_bits(&st), Some(0x3000 ^ 5u64.rotate_left(32)));
    }

    #[test]
    fn iter_yields_oldest_first_with_seqs() {
        let mut r = Ruu::new(4);
        r.push(Entry::new(di(0), Stream::Primary));
        r.push(Entry::new(di(1), Stream::Dup));
        r.pop();
        r.push(Entry::new(di(2), Stream::Primary));
        let seqs: Vec<u64> = r.iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, [1, 2]);
    }
}

#[cfg(test)]
mod generative {
    //! Seeded generative tests: inputs drawn from a fixed-seed
    //! [`redsim_util::Rng`], so failures replay exactly.

    use super::*;
    use redsim_isa::Inst;
    use redsim_util::Rng;

    fn di(seq: u64) -> DynInst {
        DynInst {
            seq,
            pc: 0x1000 + seq * 8,
            inst: Inst::NOP,
            src1: 0,
            src2: 0,
            result: None,
            ea: None,
            control: None,
            next_pc: 0x1008 + seq * 8,
        }
    }

    /// Any interleaving of pushes and pops keeps absolute-sequence
    /// addressing consistent: `get(seq)` returns the entry that was
    /// pushed as the seq-th item, or None once popped.
    #[test]
    fn seq_addressing_is_stable() {
        let mut rng = Rng::new(0x2100_0001);
        for _ in 0..64 {
            let nops = rng.range_u64(1, 200);
            let mut r = Ruu::new(16);
            let mut pushed: u64 = 0;
            let mut popped: u64 = 0;
            for _ in 0..nops {
                let push = rng.flip();
                if push && r.free() > 0 {
                    let seq = r.push(Entry::new(di(pushed), Stream::Primary));
                    assert_eq!(seq, pushed);
                    pushed += 1;
                } else if !push && !r.is_empty() {
                    let e = r.pop();
                    assert_eq!(e.di.seq, popped);
                    popped += 1;
                }
                assert_eq!(r.head_seq(), popped);
                assert_eq!(r.next_seq(), pushed);
                assert_eq!(r.len() as u64, pushed - popped);
                // Every live seq resolves, every dead one does not.
                if pushed > popped {
                    assert!(r.get(popped).is_some());
                }
                if popped > 0 {
                    assert!(r.get(popped - 1).is_none());
                }
                assert!(r.get(pushed).is_none());
            }
        }
    }
}
