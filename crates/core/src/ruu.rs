//! The Register Update Unit: SimpleScalar's unified ROB + issue window.
//!
//! Stored structure-of-arrays: the scheduling loops (issue selection,
//! writeback, the commit comparator) are the simulator's hottest code,
//! and they each read only a few bytes per entry. Splitting the former
//! monolithic `Entry` record into parallel arrays keyed by ring slot
//! means a selection probe touches a one-byte state lane instead of
//! dragging a whole ~200-byte record through the cache, and the commit
//! stage can test "how many entries from the head are done?" on packed
//! bit words instead of chasing per-entry pointers. `DESIGN.md` §12
//! documents the layout and its invariants.

use redsim_irb::IrbEntry;
use redsim_isa::trace::DynInst;
use redsim_isa::OpClass;

/// Which redundant stream a RUU entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// The primary stream — always executes on the functional units.
    Primary,
    /// The duplicate stream — the candidate for IRB service.
    Dup,
}

/// Scheduling state of one RUU entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EntryState {
    /// Waiting for `deps_remaining` producers to broadcast.
    Waiting,
    /// All operands available; contending for issue (or for the reuse
    /// test, for IRB-hit duplicates).
    Ready,
    /// Executing; completes at `complete_at`.
    Issued,
    /// A duplicate load whose address work is done (or bypassed) but
    /// whose data awaits the pair's single shared memory access.
    WaitingPair,
    /// Result produced (broadcast done, for producers).
    Done,
}

/// The IRB interaction of a duplicate entry, as the pipeline and the
/// IRB unit exchange it. Inside the RUU the discriminant and the hit
/// payload live in separate arrays ([`ReuseTag`] + a packed
/// [`IrbEntry`] lane) so the issue loop's eligibility probe reads one
/// byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseState {
    /// Not a candidate (SIE/DIE entry, or ineligible opcode).
    NotEligible,
    /// Lookup performed, PC missed.
    PcMiss,
    /// Lookup could not get an IRB read port this cycle.
    PortStarved,
    /// PC hit; entry rides along awaiting the reuse test.
    Hit(IrbEntry),
    /// Reuse test passed — the entry bypassed the functional units.
    Passed,
    /// Reuse test failed — executed on the functional units.
    Failed,
}

/// The discriminant of [`ReuseState`], stored one byte per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ReuseTag {
    /// See [`ReuseState::NotEligible`].
    NotEligible,
    /// See [`ReuseState::PcMiss`].
    PcMiss,
    /// See [`ReuseState::PortStarved`].
    PortStarved,
    /// See [`ReuseState::Hit`] — the payload sits in the hit lane.
    Hit,
    /// See [`ReuseState::Passed`].
    Passed,
    /// See [`ReuseState::Failed`].
    Failed,
}

// The hot lanes are laid out for density; accidental field growth here
// silently de-packs the scheduling loops, so the sizes are locked at
// compile time (the satellite size test re-asserts them with context).
const _: () = assert!(std::mem::size_of::<EntryState>() == 1);
const _: () = assert!(std::mem::size_of::<ReuseTag>() == 1);
const _: () = assert!(std::mem::size_of::<OpClass>() == 1);

/// Per-entry boolean lanes, packed into one 16-bit word.
mod flag {
    /// Entry belongs to the duplicate stream.
    pub const DUP: u16 = 1 << 0;
    /// Entry has consumed a functional unit.
    pub const EXECUTED_ON_FU: u16 = 1 << 1;
    /// A fault was injected somewhere on this copy's path.
    pub const FAULT_TAINTED: u16 = 1 << 2;
    /// Mispredict resolution already reported to the front end.
    pub const RESOLUTION_REPORTED: u16 = 1 << 3;
    /// The `out_bits` lane holds a comparator word.
    pub const HAS_OUT: u16 = 1 << 4;
    /// The instruction is a load.
    pub const IS_LOAD: u16 = 1 << 5;
    /// The instruction is a store.
    pub const IS_STORE: u16 = 1 << 6;
    /// The record carries a control-flow outcome (branch/jump).
    pub const IS_CONTROL: u16 = 1 << 7;
    /// The entry's `di` lane is unwritten: the record lives in the
    /// previous slot (the pair's primary). Set only by
    /// [`super::Ruu::push_dup_shared`].
    pub const SHARED_DI: u16 = 1 << 8;

    /// Every defined flag. Locked below to a contiguous low-bit run so
    /// two flags can't silently share a bit and the lane provably holds
    /// them all.
    pub const ALL: u16 = DUP
        | EXECUTED_ON_FU
        | FAULT_TAINTED
        | RESOLUTION_REPORTED
        | HAS_OUT
        | IS_LOAD
        | IS_STORE
        | IS_CONTROL
        | SHARED_DI;
}

const _: () = assert!(flag::ALL == (1 << 9) - 1);

/// Sentinel for "no completion cycle scheduled".
const NO_CYCLE: u64 = u64::MAX;

/// The architectural check value of a dynamic instruction, as the DIE
/// commit comparator sees it (§2.1).
///
/// Memory instructions are checked on the redundantly-computed piece —
/// the effective address (the single shared data-cache access is outside
/// the comparison; stores additionally fold the data value in). Control
/// instructions are checked on their encoded outcome; everything else on
/// the destination value.
#[must_use]
pub fn checked_bits(di: &DynInst) -> Option<u64> {
    if di.inst.op.is_load() {
        return di.ea;
    }
    if di.inst.op.is_store() {
        // Fold address and store data into one comparator word.
        return di.ea.map(|ea| ea ^ di.src2.rotate_left(32));
    }
    if let Some(c) = di.control {
        return Some(c.target | u64::from(c.taken) << 63);
    }
    di.result
}

/// The RUU: a bounded FIFO addressed by absolute sequence number
/// (entries never leave out of order — the committed-path trace
/// contains no wrong-path work to squash), stored as parallel arrays
/// over a power-of-two ring.
///
/// Slot addressing: entry `seq` lives at slot `seq & mask`. Because the
/// live window `[base, base + len)` never exceeds the ring size, slot
/// assignment is collision-free and ring order equals seq order.
#[derive(Debug, Default)]
pub struct Ruu {
    /// Absolute seq of the oldest entry.
    base: u64,
    /// Live entries.
    len: usize,
    /// Configured capacity (`free` counts against this).
    capacity: usize,
    /// Ring size: `capacity.next_power_of_two()`.
    cap: usize,
    /// `cap - 1`.
    mask: u64,

    // ---- per-slot lanes (each `cap` long) --------------------------
    /// The committed-path record each entry is a copy of (cold: the
    /// scheduling loops read the scalar lanes below instead).
    di: Vec<DynInst>,
    /// Scheduling state.
    state: Vec<EntryState>,
    /// Packed boolean lanes ([`flag`]).
    flags: Vec<u16>,
    /// Functional-unit class, cached at dispatch.
    class: Vec<OpClass>,
    /// Producers still outstanding.
    deps_remaining: Vec<u32>,
    /// Completion (result broadcast) cycle; [`NO_CYCLE`] when unknown.
    complete_at: Vec<u64>,
    /// Cycle the entry last became [`EntryState::Ready`] (drives the
    /// non-data-capture reuse-test timing).
    ready_at: Vec<u64>,
    /// Earliest cycle the IRB lookup result is available.
    lookup_done_at: Vec<u64>,
    /// Comparator word this copy produced (valid iff
    /// [`flag::HAS_OUT`]).
    out_bits: Vec<u64>,
    /// XOR mask accumulated from corrupted operand forwarding.
    input_corrupt: Vec<u64>,
    /// IRB interaction discriminant.
    reuse: Vec<ReuseTag>,
    /// IRB hit payload (valid iff the reuse tag is [`ReuseTag::Hit`]).
    hit: Vec<IrbEntry>,
    /// Absolute seqs of in-flight consumers to wake on broadcast.
    consumers: Vec<Vec<u64>>,
    /// Ids of the faults riding on each copy; resolved to a terminal
    /// outcome at commit or rewind. Empty in fault-free runs, so it
    /// never allocates on the common path.
    fault_ids: Vec<Vec<u32>>,

    /// One bit per slot, set while the slot's entry is
    /// [`EntryState::Done`] — the commit stage counts its retirement
    /// window with word-parallel trailing-ones instead of a per-entry
    /// state walk.
    done_words: Vec<u64>,
}

impl Ruu {
    /// Creates an empty RUU with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "RUU needs at least one entry");
        let cap = capacity.next_power_of_two().max(64);
        Ruu {
            base: 0,
            len: 0,
            capacity,
            cap,
            mask: cap as u64 - 1,
            di: vec![
                DynInst {
                    seq: 0,
                    pc: 0,
                    inst: redsim_isa::Inst::NOP,
                    src1: 0,
                    src2: 0,
                    result: None,
                    ea: None,
                    control: None,
                    next_pc: 0,
                };
                cap
            ],
            state: vec![EntryState::Waiting; cap],
            flags: vec![0; cap],
            class: vec![OpClass::IntAlu; cap],
            deps_remaining: vec![0; cap],
            complete_at: vec![NO_CYCLE; cap],
            ready_at: vec![0; cap],
            lookup_done_at: vec![0; cap],
            out_bits: vec![0; cap],
            input_corrupt: vec![0; cap],
            reuse: vec![ReuseTag::NotEligible; cap],
            hit: vec![IrbEntry::default(); cap],
            consumers: (0..cap).map(|_| Vec::new()).collect(),
            fault_ids: (0..cap).map(|_| Vec::new()).collect(),
            done_words: vec![0; cap.div_ceil(64)],
        }
    }

    // ---- ring bookkeeping ------------------------------------------

    /// Free slots.
    #[must_use]
    pub fn free(&self) -> usize {
        self.capacity - self.len
    }

    /// Occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Absolute seq the next pushed entry will receive.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.base + self.len as u64
    }

    /// Absolute seq of the oldest entry.
    #[must_use]
    pub fn head_seq(&self) -> u64 {
        self.base
    }

    /// Ring size (power of two) — sizes the per-stream ready bitsets.
    #[must_use]
    pub fn slot_capacity(&self) -> usize {
        self.cap
    }

    /// Ring slot of an absolute seq (collision-free for live seqs).
    #[inline]
    #[must_use]
    pub fn slot_of(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    /// `true` while `seq` is in flight.
    #[inline]
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        seq.wrapping_sub(self.base) < self.len as u64
    }

    #[inline]
    fn slot(&self, seq: u64) -> usize {
        debug_assert!(self.contains(seq), "seq {seq} not in flight");
        (seq & self.mask) as usize
    }

    #[inline]
    fn set_done_bit(&mut self, slot: usize, done: bool) {
        let w = slot >> 6;
        let b = slot & 63;
        self.done_words[w] = (self.done_words[w] & !(1 << b)) | (u64::from(done) << b);
    }

    /// Pushes a freshly dispatched copy, returning its absolute seq.
    ///
    /// # Panics
    ///
    /// Panics if the RUU is full — dispatch must check [`Ruu::free`].
    #[inline]
    pub fn push(&mut self, di: DynInst, stream: Stream) -> u64 {
        assert!(self.len < self.capacity, "RUU overflow");
        let seq = self.next_seq();
        let s = (seq & self.mask) as usize;
        let op = di.inst.op;
        let mut flags = 0u16;
        flags |= u16::from(stream == Stream::Dup) * flag::DUP;
        flags |= u16::from(op.is_load()) * flag::IS_LOAD;
        flags |= u16::from(op.is_store()) * flag::IS_STORE;
        flags |= u16::from(di.control.is_some()) * flag::IS_CONTROL;
        self.class[s] = di.class();
        self.di[s] = di;
        self.init_slot(s, flags);
        seq
    }

    /// Pushes the duplicate copy of a DIE pair, sharing the record the
    /// immediately preceding push (the pair's primary) already wrote
    /// instead of storing a second identical `DynInst`. [`Ruu::di`]
    /// redirects reads through the pairing, which stays valid for the
    /// dup's whole lifetime: pairs enter together and commit pops them
    /// together, so the primary's slot is never recycled first.
    ///
    /// # Panics
    ///
    /// Panics if the RUU is full — dispatch must check [`Ruu::free`].
    #[inline]
    pub fn push_dup_shared(&mut self) -> u64 {
        assert!(self.len < self.capacity, "RUU overflow");
        let seq = self.next_seq();
        let s = (seq & self.mask) as usize;
        let p = (seq.wrapping_sub(1) & self.mask) as usize;
        debug_assert!(
            self.len > 0 && self.flags[p] & flag::DUP == 0,
            "a shared dup must directly follow its primary"
        );
        let inherited = self.flags[p] & (flag::IS_LOAD | flag::IS_STORE | flag::IS_CONTROL);
        self.class[s] = self.class[p];
        self.init_slot(s, inherited | flag::DUP | flag::SHARED_DI);
        seq
    }

    /// Shared tail of the push paths: resets every scheduling lane of
    /// slot `s`. `ready_at`, `lookup_done_at` and `out_bits` are left
    /// stale on purpose — each is written before its first read
    /// (`ready_at` whenever an entry turns `Ready`, `lookup_done_at`
    /// alongside the `Hit` tag that gates its readers, `out_bits`
    /// behind [`flag::HAS_OUT`], cleared here).
    #[inline]
    fn init_slot(&mut self, s: usize, flags: u16) {
        self.state[s] = EntryState::Waiting;
        self.flags[s] = flags;
        self.deps_remaining[s] = 0;
        self.complete_at[s] = NO_CYCLE;
        self.input_corrupt[s] = 0;
        self.reuse[s] = ReuseTag::NotEligible;
        self.set_done_bit(s, false);
        debug_assert!(self.consumers[s].is_empty(), "slot recycled clean");
        debug_assert!(self.fault_ids[s].is_empty(), "slot recycled clean");
        self.len += 1;
    }

    /// Pops the oldest entry (commit).
    ///
    /// # Panics
    ///
    /// Panics if the RUU is empty.
    pub fn pop(&mut self) {
        assert!(self.len > 0, "RUU underflow");
        let s = (self.base & self.mask) as usize;
        self.set_done_bit(s, false);
        self.base += 1;
        self.len -= 1;
    }

    // ---- lane accessors --------------------------------------------

    /// The committed-path record of a live entry. A shared dup
    /// ([`Ruu::push_dup_shared`]) reads through to its primary's slot.
    #[inline]
    #[must_use]
    pub fn di(&self, seq: u64) -> &DynInst {
        let s = self.slot(seq);
        let s = if self.flags[s] & flag::SHARED_DI != 0 {
            (seq.wrapping_sub(1) & self.mask) as usize
        } else {
            s
        };
        &self.di[s]
    }

    /// Scheduling state.
    #[inline]
    #[must_use]
    pub fn state(&self, seq: u64) -> EntryState {
        self.state[self.slot(seq)]
    }

    /// Sets the scheduling state (also maintains the done-bit word the
    /// commit stage scans).
    #[inline]
    pub fn set_state(&mut self, seq: u64, state: EntryState) {
        let s = self.slot(seq);
        self.state[s] = state;
        self.set_done_bit(s, state == EntryState::Done);
    }

    /// `true` while `seq` is live and [`EntryState::Done`].
    #[inline]
    #[must_use]
    pub fn is_done(&self, seq: u64) -> bool {
        self.contains(seq) && self.state[(seq & self.mask) as usize] == EntryState::Done
    }

    /// Which stream the entry belongs to.
    #[inline]
    #[must_use]
    pub fn stream(&self, seq: u64) -> Stream {
        if self.is_dup(seq) {
            Stream::Dup
        } else {
            Stream::Primary
        }
    }

    /// `true` for duplicate-stream entries.
    #[inline]
    #[must_use]
    pub fn is_dup(&self, seq: u64) -> bool {
        self.flags[self.slot(seq)] & flag::DUP != 0
    }

    /// Functional-unit class, cached at dispatch.
    #[inline]
    #[must_use]
    pub fn class(&self, seq: u64) -> OpClass {
        self.class[self.slot(seq)]
    }

    /// `true` for loads.
    #[inline]
    #[must_use]
    pub fn is_load(&self, seq: u64) -> bool {
        self.flags[self.slot(seq)] & flag::IS_LOAD != 0
    }

    /// `true` for stores.
    #[inline]
    #[must_use]
    pub fn is_store(&self, seq: u64) -> bool {
        self.flags[self.slot(seq)] & flag::IS_STORE != 0
    }

    /// `true` for loads and stores.
    #[inline]
    #[must_use]
    pub fn is_mem(&self, seq: u64) -> bool {
        self.flags[self.slot(seq)] & (flag::IS_LOAD | flag::IS_STORE) != 0
    }

    /// `true` when the entry's record carries a control-flow outcome —
    /// a flag read, so branch resolution can skip the `DynInst` lane
    /// for the (majority) non-control entries.
    #[inline]
    #[must_use]
    pub fn is_control(&self, seq: u64) -> bool {
        self.flags[self.slot(seq)] & flag::IS_CONTROL != 0
    }

    /// Producers still outstanding.
    #[inline]
    #[must_use]
    pub fn deps_remaining(&self, seq: u64) -> u32 {
        self.deps_remaining[self.slot(seq)]
    }

    /// Sets the outstanding-producer count.
    #[inline]
    pub fn set_deps_remaining(&mut self, seq: u64, deps: u32) {
        let s = self.slot(seq);
        self.deps_remaining[s] = deps;
    }

    /// Decrements the outstanding-producer count (which must be
    /// non-zero), returning the new value.
    #[inline]
    pub fn dec_deps(&mut self, seq: u64) -> u32 {
        let s = self.slot(seq);
        self.deps_remaining[s] -= 1;
        self.deps_remaining[s]
    }

    /// Completion cycle, once known.
    #[inline]
    #[must_use]
    pub fn complete_at(&self, seq: u64) -> Option<u64> {
        let at = self.complete_at[self.slot(seq)];
        (at != NO_CYCLE).then_some(at)
    }

    /// `true` if the entry is scheduled to complete exactly at `cycle`.
    #[inline]
    #[must_use]
    pub fn completes_at(&self, seq: u64, cycle: u64) -> bool {
        self.complete_at[self.slot(seq)] == cycle
    }

    /// Schedules the completion cycle.
    #[inline]
    pub fn set_complete_at(&mut self, seq: u64, at: u64) {
        let s = self.slot(seq);
        self.complete_at[s] = at;
    }

    /// Clears the completion cycle (rewind).
    #[inline]
    pub fn clear_complete_at(&mut self, seq: u64) {
        let s = self.slot(seq);
        self.complete_at[s] = NO_CYCLE;
    }

    /// Cycle the entry last became ready.
    #[inline]
    #[must_use]
    pub fn ready_at(&self, seq: u64) -> u64 {
        self.ready_at[self.slot(seq)]
    }

    /// Records the ready transition cycle.
    #[inline]
    pub fn set_ready_at(&mut self, seq: u64, cycle: u64) {
        let s = self.slot(seq);
        self.ready_at[s] = cycle;
    }

    /// Earliest cycle the IRB lookup result is available.
    #[inline]
    #[must_use]
    pub fn lookup_done_at(&self, seq: u64) -> u64 {
        self.lookup_done_at[self.slot(seq)]
    }

    /// Sets the lookup-availability cycle.
    #[inline]
    pub fn set_lookup_done_at(&mut self, seq: u64, cycle: u64) {
        let s = self.slot(seq);
        self.lookup_done_at[s] = cycle;
    }

    /// Comparator word this copy produced, if any.
    #[inline]
    #[must_use]
    pub fn out_bits(&self, seq: u64) -> Option<u64> {
        let s = self.slot(seq);
        (self.flags[s] & flag::HAS_OUT != 0).then(|| self.out_bits[s])
    }

    /// Sets (or clears, with `None`) the produced comparator word.
    #[inline]
    pub fn set_out_bits(&mut self, seq: u64, out: Option<u64>) {
        let s = self.slot(seq);
        self.out_bits[s] = out.unwrap_or(0);
        self.flags[s] =
            (self.flags[s] & !flag::HAS_OUT) | (u16::from(out.is_some()) * flag::HAS_OUT);
    }

    /// Accumulated operand-corruption mask.
    #[inline]
    #[must_use]
    pub fn input_corrupt(&self, seq: u64) -> u64 {
        self.input_corrupt[self.slot(seq)]
    }

    /// XORs a forwarding-bus strike into the operand-corruption mask.
    #[inline]
    pub fn xor_input_corrupt(&mut self, seq: u64, mask: u64) {
        let s = self.slot(seq);
        self.input_corrupt[s] ^= mask;
    }

    /// Clears the operand-corruption mask (rewind).
    #[inline]
    pub fn clear_input_corrupt(&mut self, seq: u64) {
        let s = self.slot(seq);
        self.input_corrupt[s] = 0;
    }

    /// `true` once a fault was injected anywhere on this copy's path.
    #[inline]
    #[must_use]
    pub fn fault_tainted(&self, seq: u64) -> bool {
        self.flags[self.slot(seq)] & flag::FAULT_TAINTED != 0
    }

    /// Sets or clears the fault taint.
    #[inline]
    pub fn set_fault_tainted(&mut self, seq: u64, tainted: bool) {
        let s = self.slot(seq);
        self.flags[s] =
            (self.flags[s] & !flag::FAULT_TAINTED) | (u16::from(tainted) * flag::FAULT_TAINTED);
    }

    /// `true` once the entry has consumed a functional unit.
    #[inline]
    #[must_use]
    pub fn executed_on_fu(&self, seq: u64) -> bool {
        self.flags[self.slot(seq)] & flag::EXECUTED_ON_FU != 0
    }

    /// Sets or clears the executed-on-FU mark.
    #[inline]
    pub fn set_executed_on_fu(&mut self, seq: u64, executed: bool) {
        let s = self.slot(seq);
        self.flags[s] =
            (self.flags[s] & !flag::EXECUTED_ON_FU) | (u16::from(executed) * flag::EXECUTED_ON_FU);
    }

    /// `true` once mispredict resolution was reported for this entry.
    #[inline]
    #[must_use]
    pub fn resolution_reported(&self, seq: u64) -> bool {
        self.flags[self.slot(seq)] & flag::RESOLUTION_REPORTED != 0
    }

    /// Marks mispredict resolution as reported.
    #[inline]
    pub fn set_resolution_reported(&mut self, seq: u64) {
        let s = self.slot(seq);
        self.flags[s] |= flag::RESOLUTION_REPORTED;
    }

    /// IRB interaction discriminant (one-byte probe for the issue
    /// loop's eligibility and the stall classifier).
    #[inline]
    #[must_use]
    pub fn reuse_tag(&self, seq: u64) -> ReuseTag {
        self.reuse[self.slot(seq)]
    }

    /// The buffered execution of a PC-hit entry.
    ///
    /// Valid only while [`Ruu::reuse_tag`] is [`ReuseTag::Hit`].
    #[inline]
    #[must_use]
    pub fn reuse_hit(&self, seq: u64) -> IrbEntry {
        let s = self.slot(seq);
        debug_assert_eq!(self.reuse[s], ReuseTag::Hit);
        self.hit[s]
    }

    /// Stores the full IRB interaction, splitting tag and payload.
    #[inline]
    pub fn set_reuse(&mut self, seq: u64, reuse: ReuseState) {
        let s = self.slot(seq);
        self.reuse[s] = match reuse {
            ReuseState::NotEligible => ReuseTag::NotEligible,
            ReuseState::PcMiss => ReuseTag::PcMiss,
            ReuseState::PortStarved => ReuseTag::PortStarved,
            ReuseState::Hit(entry) => {
                self.hit[s] = entry;
                ReuseTag::Hit
            }
            ReuseState::Passed => ReuseTag::Passed,
            ReuseState::Failed => ReuseTag::Failed,
        };
    }

    /// Registers `consumer` with a live producer for wakeup on its
    /// broadcast. `spare` supplies a recycled vector so a producer's
    /// first consumer never allocates in steady state; it is consumed
    /// only when used. Returns `true` if the edge was recorded (the
    /// producer is live and not yet done).
    #[inline]
    pub fn push_consumer(
        &mut self,
        producer: u64,
        consumer: u64,
        spare: &mut Option<Vec<u64>>,
    ) -> bool {
        if !self.contains(producer) {
            return false;
        }
        let s = (producer & self.mask) as usize;
        if self.state[s] == EntryState::Done {
            return false;
        }
        if self.consumers[s].capacity() == 0 {
            if let Some(v) = spare.take() {
                self.consumers[s] = v;
            }
        }
        self.consumers[s].push(consumer);
        true
    }

    /// Takes the consumer list for broadcast (leaves an empty one).
    #[inline]
    #[must_use]
    pub fn take_consumers(&mut self, seq: u64) -> Vec<u64> {
        let s = self.slot(seq);
        std::mem::take(&mut self.consumers[s])
    }

    /// `true` when no consumers are registered.
    #[inline]
    #[must_use]
    pub fn consumers_is_empty(&self, seq: u64) -> bool {
        self.consumers[self.slot(seq)].is_empty()
    }

    /// Appends a fault id to the copy's ledger.
    #[inline]
    pub fn push_fault_id(&mut self, seq: u64, id: u32) {
        let s = self.slot(seq);
        self.fault_ids[s].push(id);
    }

    /// `true` when no faults ride on the copy.
    #[inline]
    #[must_use]
    pub fn fault_ids_is_empty(&self, seq: u64) -> bool {
        self.fault_ids[self.slot(seq)].is_empty()
    }

    /// Takes the copy's fault ledger for terminal resolution.
    #[inline]
    #[must_use]
    pub fn take_fault_ids(&mut self, seq: u64) -> Vec<u32> {
        let s = self.slot(seq);
        std::mem::take(&mut self.fault_ids[s])
    }

    /// The clean (fault-free) architectural check value of a copy.
    #[must_use]
    pub fn clean_check_bits(&self, seq: u64) -> Option<u64> {
        checked_bits(self.di(seq))
    }

    // ---- window scans ----------------------------------------------

    /// Consecutive [`EntryState::Done`] entries from the head, capped
    /// at `max`: the commit stage's retirement window, computed with
    /// word-parallel trailing-ones over the done-bit words instead of
    /// an early-exit per-entry walk.
    #[must_use]
    pub fn done_run_from_head(&self, max: usize) -> usize {
        let limit = max.min(self.len);
        let mut run = 0usize;
        let mut slot = (self.base & self.mask) as usize;
        while run < limit {
            let bit = slot & 63;
            // Bits of this word at and above `bit`, complemented and
            // masked to the word (the shift pulls in zeros that belong
            // to the next word): a set bit marks a not-done entry.
            let not_done = !(self.done_words[slot >> 6] >> bit) & (!0 >> bit);
            if not_done == 0 {
                let span = 64 - bit;
                run += span;
                slot = (slot + span) & (self.cap - 1);
            } else {
                run += not_done.trailing_zeros() as usize;
                break;
            }
        }
        run.min(limit)
    }

    /// Appends the seqs of entries issued and completing at `cycle`,
    /// oldest-first (the scan engine's writeback selection).
    pub fn collect_completing(&self, cycle: u64, out: &mut Vec<u64>) {
        for i in 0..self.len as u64 {
            let seq = self.base + i;
            let s = (seq & self.mask) as usize;
            if self.state[s] == EntryState::Issued && self.complete_at[s] == cycle {
                out.push(seq);
            }
        }
    }

    /// Appends the seqs of [`EntryState::Ready`] entries, oldest-first
    /// (the scan engine's issue selection).
    pub fn collect_ready(&self, out: &mut Vec<u64>) {
        for i in 0..self.len as u64 {
            let seq = self.base + i;
            if self.state[(seq & self.mask) as usize] == EntryState::Ready {
                out.push(seq);
            }
        }
    }

    /// Live entries currently [`EntryState::Ready`] (metrics snapshot).
    #[must_use]
    pub fn ready_count(&self) -> u64 {
        let mut n = 0;
        for i in 0..self.len as u64 {
            let seq = self.base + i;
            n += u64::from(self.state[(seq & self.mask) as usize] == EntryState::Ready);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_isa::trace::ControlOutcome;
    use redsim_isa::Inst;

    fn di(seq: u64) -> DynInst {
        DynInst {
            seq,
            pc: 0x1000 + seq * 8,
            inst: Inst::NOP,
            src1: 0,
            src2: 0,
            result: None,
            ea: None,
            control: None,
            next_pc: 0x1008 + seq * 8,
        }
    }

    #[test]
    fn soa_lane_footprint_is_locked() {
        // The scheduling loops are packed around these widths; growing
        // a lane element de-packs them (more cache lines per window
        // walk) without failing any behavioral test. Each entry below
        // names the lane it sizes.
        assert_eq!(std::mem::size_of::<EntryState>(), 1, "state lane");
        assert_eq!(std::mem::size_of::<u16>(), 2, "flags lane");
        assert_eq!(std::mem::size_of::<OpClass>(), 1, "class lane");
        assert_eq!(std::mem::size_of::<u32>(), 4, "deps_remaining lane");
        assert_eq!(std::mem::size_of::<ReuseTag>(), 1, "reuse lane");
        assert_eq!(std::mem::size_of::<IrbEntry>(), 32, "hit lane");
        // The five u64 timing/comparator lanes plus the scalar lanes
        // above: the whole hot record, excluding the cold `di` lane and
        // the rarely-touched consumer/fault vectors.
        let hot = std::mem::size_of::<EntryState>()
            + std::mem::size_of::<u16>()
            + std::mem::size_of::<OpClass>()
            + std::mem::size_of::<u32>()
            + std::mem::size_of::<ReuseTag>()
            + std::mem::size_of::<IrbEntry>()
            + 5 * std::mem::size_of::<u64>();
        assert_eq!(hot, 81, "hot SoA bytes per slot");
    }

    #[test]
    fn seq_addressing_survives_pops() {
        let mut r = Ruu::new(4);
        let s0 = r.push(di(0), Stream::Primary);
        let s1 = r.push(di(1), Stream::Primary);
        assert_eq!((s0, s1), (0, 1));
        r.set_state(s0, EntryState::Done);
        r.pop();
        assert!(!r.contains(s0), "committed entries are gone");
        assert_eq!(r.di(s1).seq, 1);
        let s2 = r.push(di(2), Stream::Primary);
        assert_eq!(s2, 2);
        assert_eq!(r.head_seq(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut r = Ruu::new(2);
        r.push(di(0), Stream::Primary);
        assert_eq!(r.free(), 1);
        r.push(di(1), Stream::Dup);
        assert_eq!(r.free(), 0);
        assert!(r.is_dup(1));
        assert!(!r.is_dup(0));
    }

    #[test]
    #[should_panic(expected = "RUU overflow")]
    fn overflow_panics() {
        let mut r = Ruu::new(1);
        r.push(di(0), Stream::Primary);
        r.push(di(1), Stream::Primary);
    }

    #[test]
    fn checked_bits_covers_each_instruction_kind() {
        use redsim_isa::{IntReg, Opcode};
        let mut d = di(0);
        assert_eq!(checked_bits(&d), None, "nop checks nothing");
        d.control = Some(ControlOutcome {
            taken: true,
            target: 0x2000,
        });
        assert_eq!(checked_bits(&d), Some(0x2000 | 1 << 63));
        d.control = None;
        d.result = Some(42);
        assert_eq!(checked_bits(&d), Some(42), "alu checks the result");

        // Control outcome takes precedence over a link-register result
        // (jal is checked on its encoded outcome, like the pipeline).
        d.control = Some(ControlOutcome {
            taken: true,
            target: 0x40,
        });
        assert_eq!(checked_bits(&d), Some(0x40 | 1 << 63));

        // A load is checked on its redundantly computed address, not on
        // the singly-fetched data value.
        let mut ld = di(1);
        ld.inst = Inst::load_int(Opcode::Ld, IntReg::new(1), IntReg::new(2), 0);
        ld.ea = Some(0x3000);
        ld.result = Some(777);
        assert_eq!(checked_bits(&ld), Some(0x3000));

        // A store folds address and data.
        let mut st = di(2);
        st.inst = Inst::store_int(Opcode::Sd, IntReg::new(1), IntReg::new(2), 0);
        st.ea = Some(0x3000);
        st.src2 = 5;
        assert_eq!(checked_bits(&st), Some(0x3000 ^ 5u64.rotate_left(32)));
    }

    #[test]
    fn lanes_round_trip_through_accessors() {
        let mut r = Ruu::new(4);
        let s = r.push(di(0), Stream::Dup);
        assert_eq!(r.state(s), EntryState::Waiting);
        assert_eq!(r.complete_at(s), None);
        assert_eq!(r.out_bits(s), None);
        assert_eq!(r.reuse_tag(s), ReuseTag::NotEligible);

        r.set_state(s, EntryState::Ready);
        r.set_ready_at(s, 7);
        r.set_complete_at(s, 12);
        r.set_out_bits(s, Some(0xDEAD));
        r.set_fault_tainted(s, true);
        r.set_executed_on_fu(s, true);
        r.xor_input_corrupt(s, 0b101);
        let hit = IrbEntry {
            pc: 0x1000,
            op1: 1,
            op2: 2,
            result: 3,
        };
        r.set_reuse(s, ReuseState::Hit(hit));

        assert_eq!(r.state(s), EntryState::Ready);
        assert_eq!(r.ready_at(s), 7);
        assert_eq!(r.complete_at(s), Some(12));
        assert!(r.completes_at(s, 12));
        assert_eq!(r.out_bits(s), Some(0xDEAD));
        assert!(r.fault_tainted(s));
        assert!(r.executed_on_fu(s));
        assert_eq!(r.input_corrupt(s), 0b101);
        assert_eq!(r.reuse_tag(s), ReuseTag::Hit);
        assert_eq!(r.reuse_hit(s), hit);

        // Clearing paths (the rewind sequence).
        r.clear_complete_at(s);
        r.set_out_bits(s, None);
        r.set_fault_tainted(s, false);
        r.clear_input_corrupt(s);
        r.set_reuse(s, ReuseState::NotEligible);
        assert_eq!(r.complete_at(s), None);
        assert_eq!(r.out_bits(s), None);
        assert!(!r.fault_tainted(s));
        assert_eq!(r.input_corrupt(s), 0);
        assert_eq!(r.reuse_tag(s), ReuseTag::NotEligible);
    }

    #[test]
    fn out_bits_zero_is_distinct_from_none() {
        let mut r = Ruu::new(2);
        let s = r.push(di(0), Stream::Primary);
        assert_eq!(r.out_bits(s), None);
        r.set_out_bits(s, Some(0));
        assert_eq!(r.out_bits(s), Some(0), "a produced zero is a value");
    }

    #[test]
    fn done_run_counts_the_retirement_window() {
        let mut r = Ruu::new(8);
        for i in 0..6 {
            r.push(di(i), Stream::Primary);
        }
        assert_eq!(r.done_run_from_head(8), 0);
        for s in [0u64, 1, 2, 4] {
            r.set_state(s, EntryState::Done);
        }
        assert_eq!(r.done_run_from_head(8), 3, "stops at the first hole");
        assert_eq!(r.done_run_from_head(2), 2, "capped by the budget");
        r.set_state(3, EntryState::Done);
        assert_eq!(r.done_run_from_head(8), 5);
        // A state change away from Done clears the bit.
        r.set_state(1, EntryState::Ready);
        assert_eq!(r.done_run_from_head(8), 1);
    }

    #[test]
    fn done_run_crosses_word_and_ring_boundaries() {
        // Walk the ring so the live window wraps: the word-parallel
        // count must follow ring order, not raw slot order.
        let cap = 64; // Ruu::new rounds up to at least 64 slots
        let mut r = Ruu::new(cap);
        // Advance base to cap - 8, leaving the ring empty.
        for i in 0..cap as u64 - 8 {
            r.push(di(i), Stream::Primary);
            r.set_state(i, EntryState::Done);
            r.pop();
        }
        // Live window now spans the wrap point.
        for i in 0..16u64 {
            let seq = r.push(di(cap as u64 - 8 + i), Stream::Primary);
            r.set_state(seq, EntryState::Done);
        }
        assert_eq!(r.done_run_from_head(64), 16);
        let hole = r.head_seq() + 9; // just past the wrap
        r.set_state(hole, EntryState::Waiting);
        assert_eq!(r.done_run_from_head(64), 9);
    }

    #[test]
    fn scan_collectors_walk_oldest_first() {
        let mut r = Ruu::new(8);
        for i in 0..5 {
            r.push(di(i), Stream::Primary);
        }
        r.set_state(1, EntryState::Ready);
        r.set_state(3, EntryState::Ready);
        r.set_state(2, EntryState::Issued);
        r.set_complete_at(2, 9);
        r.set_state(4, EntryState::Issued);
        r.set_complete_at(4, 10);
        let mut out = Vec::new();
        r.collect_ready(&mut out);
        assert_eq!(out, [1, 3]);
        assert_eq!(r.ready_count(), 2);
        out.clear();
        r.collect_completing(9, &mut out);
        assert_eq!(out, [2]);
    }

    #[test]
    fn consumer_pooling_hands_out_spares() {
        let mut r = Ruu::new(4);
        let p = r.push(di(0), Stream::Primary);
        let c = r.push(di(1), Stream::Primary);
        let mut spare = Some(Vec::with_capacity(8));
        assert!(r.push_consumer(p, c, &mut spare));
        assert!(spare.is_none(), "first consumer takes the spare");
        let taken = r.take_consumers(p);
        assert_eq!(taken, [c]);
        assert!(taken.capacity() >= 8, "recycled storage");
        assert!(r.consumers_is_empty(p));
        // A done producer rejects new edges.
        r.set_state(p, EntryState::Done);
        let mut none = None;
        assert!(!r.push_consumer(p, c, &mut none));
        // A dead producer rejects new edges.
        assert!(!r.push_consumer(99, c, &mut none));
    }
}

#[cfg(test)]
mod generative {
    //! Seeded generative tests: inputs drawn from a fixed-seed
    //! [`redsim_util::Rng`], so failures replay exactly.

    use super::*;
    use redsim_isa::Inst;
    use redsim_util::Rng;

    fn di(seq: u64) -> DynInst {
        DynInst {
            seq,
            pc: 0x1000 + seq * 8,
            inst: Inst::NOP,
            src1: 0,
            src2: 0,
            result: None,
            ea: None,
            control: None,
            next_pc: 0x1008 + seq * 8,
        }
    }

    /// Any interleaving of pushes and pops keeps absolute-sequence
    /// addressing consistent: `contains(seq)` answers for exactly the
    /// live window, and lane reads return what the seq-th push wrote.
    #[test]
    fn seq_addressing_is_stable() {
        let mut rng = Rng::new(0x2100_0001);
        for _ in 0..64 {
            let nops = rng.range_u64(1, 200);
            let mut r = Ruu::new(16);
            let mut pushed: u64 = 0;
            let mut popped: u64 = 0;
            for _ in 0..nops {
                let push = rng.flip();
                if push && r.free() > 0 {
                    let seq = r.push(di(pushed), Stream::Primary);
                    assert_eq!(seq, pushed);
                    pushed += 1;
                } else if !push && !r.is_empty() {
                    assert_eq!(r.di(popped).seq, popped);
                    r.pop();
                    popped += 1;
                }
                assert_eq!(r.head_seq(), popped);
                assert_eq!(r.next_seq(), pushed);
                assert_eq!(r.len() as u64, pushed - popped);
                // Every live seq resolves, every dead one does not.
                if pushed > popped {
                    assert!(r.contains(popped));
                }
                if popped > 0 {
                    assert!(!r.contains(popped - 1));
                }
                assert!(!r.contains(pushed));
            }
        }
    }

    /// The word-parallel done-run always equals the naive per-entry
    /// walk, across random fills, holes, pops, and ring wrap.
    #[test]
    fn done_run_matches_naive_walk() {
        let mut rng = Rng::new(0x2100_0002);
        for _ in 0..128 {
            let mut r = Ruu::new(16); // 64-slot ring exercises wrap
            let mut next = 0u64;
            for _ in 0..rng.range_u64(1, 300) {
                match rng.index(3) {
                    0 if r.free() > 0 => {
                        let s = r.push(di(next), Stream::Primary);
                        if rng.flip() {
                            r.set_state(s, EntryState::Done);
                        }
                        next += 1;
                    }
                    // Pops model commit: only done heads retire.
                    1 if !r.is_empty() && r.is_done(r.head_seq()) => {
                        r.pop();
                    }
                    2 if !r.is_empty() => {
                        let seq = r.head_seq() + rng.below(r.len() as u64);
                        let s = *rng.pick(&[
                            EntryState::Waiting,
                            EntryState::Ready,
                            EntryState::Issued,
                            EntryState::Done,
                        ]);
                        r.set_state(seq, s);
                    }
                    _ => {}
                }
                let max = rng.index(20);
                let naive = (0..r.len() as u64)
                    .take_while(|&i| r.state(r.head_seq() + i) == EntryState::Done)
                    .count()
                    .min(max);
                assert_eq!(r.done_run_from_head(max), naive);
            }
        }
    }
}
