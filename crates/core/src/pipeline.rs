//! The cycle loop: fetch, dispatch, issue, writeback, commit.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use redsim_isa::trace::DynInst;
use redsim_isa::{EmuError, OpClass, Program};
use redsim_mem::{Hierarchy, Level};
use redsim_util::FxHashMap;

use crate::config::{
    ExecMode, ForwardingPolicy, IssuePolicy, MachineConfig, SchedEngine, SchedulerModel,
};
use crate::fault::{FaultConfig, FaultConfigError, FaultInjector, FaultOutcome};
use crate::frontend::{FetchOutcome, FrontEnd};
use crate::fu::{FuBank, Pool};
use crate::irb_unit::{reuse_output, IrbUnit};
use crate::metrics::{
    HostPhase, HostProfiler, MetricsSink, NullMetrics, WindowCounters, WindowSample,
};
use crate::ruu::{EntryState, ReuseState, ReuseTag, Ruu, Stream};
use crate::sched::{Calendar, ReadySet};
use crate::source::{EmulatorSource, InstructionSource};
use crate::stats::{BranchSummary, IrbSummary, SimStats};
use crate::trace::{NullTracer, TraceEvent, TraceEventKind, Tracer};

/// Simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// The functional emulator faulted while producing the trace.
    Emu(EmuError),
    /// The timing model stopped making progress (an internal bug or an
    /// impossible configuration).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
    },
    /// A host-side supervisor raised the cancellation flag attached via
    /// [`Simulator::with_cancel`] — typically a wall-clock deadline,
    /// distinct from the simulated-cycle watchdog.
    HostCancelled {
        /// Cycle at which the flag was observed.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Emu(e) => write!(f, "functional execution failed: {e}"),
            SimError::Deadlock { cycle } => {
                write!(f, "pipeline made no progress near cycle {cycle}")
            }
            SimError::HostCancelled { cycle } => {
                write!(
                    f,
                    "host wall-clock deadline cancelled the run near cycle {cycle}"
                )
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Emu(e) => Some(e),
            SimError::Deadlock { .. } | SimError::HostCancelled { .. } => None,
        }
    }
}

impl From<EmuError> for SimError {
    fn from(e: EmuError) -> Self {
        SimError::Emu(e)
    }
}

/// The user-facing simulator: a machine configuration plus an execution
/// mode, runnable over programs or raw instruction sources.
///
/// # Examples
///
/// ```
/// use redsim_core::{ExecMode, MachineConfig, Simulator};
/// use redsim_isa::asm::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("main: li t0, 50\nl: addi t0, t0, -1\n bnez t0, l\n halt\n")?;
/// let stats = Simulator::new(MachineConfig::tiny(), ExecMode::Sie).run_program(&p)?;
/// assert_eq!(stats.committed_insts, 102);
/// assert!(stats.ipc() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: MachineConfig,
    mode: ExecMode,
    faults: FaultConfig,
    budget: u64,
    watchdog: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    attribution: bool,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// ([`MachineConfig::validate`]).
    #[must_use]
    pub fn new(config: MachineConfig, mode: ExecMode) -> Self {
        config.validate();
        Simulator {
            config,
            mode,
            faults: FaultConfig::none(),
            budget: 50_000_000,
            watchdog: None,
            cancel: None,
            attribution: false,
        }
    }

    /// Enables reuse attribution (opcode class × PC × loop-structure
    /// accounting of every IRB event; see `redsim_irb::attribution`).
    /// The result lands in [`SimStats::attribution`](crate::SimStats).
    /// Off by default: a disabled run allocates nothing for attribution
    /// and produces byte-identical statistics.
    #[must_use]
    pub fn with_attribution(mut self) -> Self {
        self.attribution = true;
        self
    }

    /// Enables transient-fault injection, rejecting an invalid
    /// configuration with the typed [`FaultConfigError`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Fails when [`FaultConfig::validate`] does (a NaN, negative or
    /// above-one rate).
    pub fn try_with_faults(mut self, faults: FaultConfig) -> Result<Self, FaultConfigError> {
        faults.validate()?;
        self.faults = faults;
        Ok(self)
    }

    /// Enables transient-fault injection.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration
    /// ([`FaultConfig::validate`]) — use
    /// [`Simulator::try_with_faults`] to get the typed error instead.
    #[deprecated(note = "use `try_with_faults` and handle the error")]
    #[must_use]
    pub fn with_faults(self, faults: FaultConfig) -> Self {
        match self.try_with_faults(faults) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid fault configuration: {e}"),
        }
    }

    /// Sets a watchdog deadline in simulated cycles. A run that reaches
    /// the deadline stops cleanly instead of erroring: the stats carry
    /// [`SimStats::watchdog_fired`](crate::SimStats) and every
    /// unresolved fault is classified as a hang, so a livelocked
    /// configuration (e.g. a rewind storm under an extreme fault rate)
    /// becomes a structured result rather than a stuck job.
    #[must_use]
    pub fn with_watchdog(mut self, max_cycles: u64) -> Self {
        self.watchdog = Some(max_cycles);
        self
    }

    /// Overrides the functional-instruction budget (runaway backstop).
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a host-side cancellation flag. The cycle loop polls it
    /// every 64 cycles; once the flag is raised the run fails with
    /// [`SimError::HostCancelled`]. This is how a supervisor enforces a
    /// wall-clock deadline on a job without killing the whole process —
    /// unlike [`Simulator::with_watchdog`], which bounds *simulated*
    /// cycles and ends the run cleanly, cancellation is an external
    /// abort and yields an error. An unarmed simulator (the default)
    /// pays nothing: the check is behind one `Option` branch.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The execution mode.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Runs `program` to completion and reports statistics.
    ///
    /// # Errors
    ///
    /// Fails if functional execution faults (bad memory access, budget
    /// exhausted) or the timing model deadlocks.
    pub fn run_program(&self, program: &Program) -> Result<SimStats, SimError> {
        self.run_program_traced(program, &mut NullTracer)
    }

    /// Runs an arbitrary committed-path source to exhaustion.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_program`].
    pub fn run_source(&self, source: &mut dyn InstructionSource) -> Result<SimStats, SimError> {
        self.run_source_traced(source, &mut NullTracer)
    }

    /// Like [`Simulator::run_program`], recording structured pipeline
    /// events into `tracer` as the run progresses.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_program`].
    pub fn run_program_traced(
        &self,
        program: &Program,
        tracer: &mut dyn Tracer,
    ) -> Result<SimStats, SimError> {
        let mut source = EmulatorSource::new(program, self.budget);
        self.run_source_traced(&mut source, tracer)
    }

    /// Like [`Simulator::run_source`], recording structured pipeline
    /// events into `tracer`. With a sink whose
    /// [`Tracer::enabled`](crate::Tracer::enabled) answers `false`
    /// (the default [`NullTracer`](crate::NullTracer)), emission is
    /// skipped behind one cached branch per site — timing and stats are
    /// identical either way.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_program`].
    pub fn run_source_traced(
        &self,
        source: &mut dyn InstructionSource,
        tracer: &mut dyn Tracer,
    ) -> Result<SimStats, SimError> {
        self.run_source_instrumented(
            source,
            Instrumentation {
                tracer,
                metrics: &mut NullMetrics,
                profiler: None,
            },
        )
    }

    /// Like [`Simulator::run_program`], with the full observability
    /// bundle attached (tracer, windowed metrics, host profiler).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_program`].
    pub fn run_program_instrumented<'a>(
        &'a self,
        program: &Program,
        instr: Instrumentation<'a>,
    ) -> Result<SimStats, SimError> {
        let mut source = EmulatorSource::new(program, self.budget);
        self.run_source_instrumented(&mut source, instr)
    }

    /// Runs a committed-path source with the full observability bundle:
    /// trace events into `instr.tracer`, window samples into
    /// `instr.metrics` (skipped behind one cached branch when the sink
    /// reports [`MetricsSink::enabled`] `false`), and — when
    /// `instr.profiler` is attached — per-phase host wall-clock
    /// accounting. All three are observationally pure: stats are
    /// identical whether or not they are attached.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_program`].
    pub fn run_source_instrumented<'a>(
        &'a self,
        source: &mut dyn InstructionSource,
        instr: Instrumentation<'a>,
    ) -> Result<SimStats, SimError> {
        let mut m = Machine::new(
            &self.config,
            self.mode,
            self.faults,
            self.watchdog,
            self.cancel.as_deref(),
            self.attribution,
            instr,
        );
        m.run(source)
    }
}

/// The observability bundle a run can carry: a structured-event tracer,
/// a windowed-metrics sink, and an optional host-side phase profiler.
/// Each piece follows the disabled-by-default discipline — a bundle of
/// [`NullTracer`], [`NullMetrics`] and no profiler costs one
/// predictable branch per emission site.
pub struct Instrumentation<'a> {
    /// Structured pipeline events ([`crate::trace`]).
    pub tracer: &'a mut dyn Tracer,
    /// Windowed time-series samples ([`crate::metrics`]).
    pub metrics: &'a mut dyn MetricsSink,
    /// Per-phase host wall-clock accounting; `Some` enables the two
    /// monotonic-clock reads per pipeline stage call.
    pub profiler: Option<&'a mut HostProfiler>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrontState {
    Running,
    /// Stalled until the control instruction with this trace seq
    /// resolves.
    WaitBranch(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResumeReason {
    None,
    BranchRecovery,
    BtbBubble,
}

/// The entry fields an FU-issue attempt needs, read once by the issue
/// loop's candidate guard.
#[derive(Debug, Clone, Copy)]
struct FuAttempt {
    class: OpClass,
    is_load: bool,
    is_dup: bool,
    input_corrupt: u64,
}

/// Why a functional-unit issue attempt succeeded or was denied. The
/// denial causes are distinguished because they memoize differently
/// within one issue pass: a full pool stays full for the rest of the
/// cycle, while a port denial only recurs for data-cache users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuIssueOutcome {
    Issued,
    /// No data-cache port left for a load's access.
    NoPort,
    /// Every unit of the class's pool is busy (structural hazard).
    NoUnit,
}

#[derive(Debug, Clone)]
struct FetchedInst {
    di: DynInst,
    lookup_done_at: u64,
}

const PRIMARY: usize = 0;
const DUP: usize = 1;

struct Machine<'a> {
    cfg: &'a MachineConfig,
    mode: ExecMode,
    cycle: u64,
    ruu: Ruu,
    ifq: VecDeque<FetchedInst>,
    /// Parallel to `ifq`, populated only when an IRB is attached: the
    /// lookup outcome carries a 32-byte-aligned [`IrbEntry`] payload
    /// that would otherwise double the bytes every non-IRB mode moves
    /// through the fetch queue per instruction.
    ifq_reuse: VecDeque<ReuseState>,
    lookahead: Option<DynInst>,
    source_done: bool,
    rename_int: [[Option<u64>; 32]; 2],
    rename_fp: [[Option<u64>; 32]; 2],
    lsq_used: usize,
    last_store: FxHashMap<u64, u64>,
    frontend: FrontEnd,
    hierarchy: Hierarchy,
    fu: FuBank,
    /// The duplicate stream's replicated cluster (DieCluster only).
    fu_dup: Option<FuBank>,
    irb: Option<IrbUnit>,
    inj: FaultInjector,
    /// PC of the entry occupying a struck IRB slot, keyed to the fault
    /// id — a later reuse of that PC that serves corrupt bits is
    /// attributed to the strike (latest strike per PC wins).
    irb_fault_pc: FxHashMap<u64, u32>,
    /// Watchdog deadline in cycles; reaching it ends the run cleanly
    /// with pending faults classified as hangs.
    watchdog: Option<u64>,
    /// Reuse attribution requested for this run; finalize publishes the
    /// collector (or an empty record for IRB-less modes) when set.
    attribution: bool,
    /// Host-side cancellation flag, polled every 64 cycles; raised by
    /// a supervisor's wall-clock deadline.
    cancel: Option<&'a AtomicBool>,
    /// The event sink. `trace_on` caches `tracer.enabled()` so every
    /// emission site pays one predictable branch when tracing is off.
    tracer: &'a mut dyn Tracer,
    trace_on: bool,
    /// The windowed-metrics sink; `metrics_on` caches its `enabled()`
    /// the same way `trace_on` does, so the per-cycle boundary check is
    /// one predictable branch when metrics are off.
    metrics: &'a mut dyn MetricsSink,
    metrics_on: bool,
    /// Window width in simulated cycles (>= 1).
    metrics_window: u64,
    /// First cycle of the window being accumulated.
    window_start: u64,
    /// Index of the window being accumulated.
    window_index: u64,
    /// Cumulative counter snapshot at the last window boundary.
    win_base: WindowCounters,
    /// Host-side per-phase wall-clock accounting (opt-in: `Some`
    /// switches the cycle loop to its timed variant).
    profiler: Option<&'a mut HostProfiler>,
    /// A pair mismatch rewound the head pair this cycle (stall
    /// attribution: the cycle belongs to rewind recovery).
    rewound_this_cycle: bool,
    /// The previous cycle's issue loop ran out of issue slots — ready
    /// entries left over then were starved of bandwidth, not units.
    prev_issue_saturated: bool,
    stats: SimStats,
    front_state: FrontState,
    resume_at: u64,
    resume_reason: ResumeReason,
    icache_ready_at: u64,
    /// `log2` of the L1I line size (validated power of two), so the
    /// per-instruction line computation in fetch is a shift, not a
    /// division.
    l1i_line_shift: u32,
    last_fetch_line: Option<u64>,
    dcache_used: usize,
    /// Next wrong-path address the stalled front end streams through
    /// the I-cache (when `wrong_path_fetch` is on).
    wrong_path_pc: Option<u64>,
    /// Rename bank the duplicate stream reads its sources from.
    dup_source_bank: usize,
    cycles_since_commit: u64,
    /// `true` under [`SchedEngine::EventDriven`]; gates every queue and
    /// calendar update so the scan reference never accumulates stale
    /// events.
    event_driven: bool,
    /// Per-stream ready bitsets over the RUU ring slots (indexed
    /// [`PRIMARY`]/[`DUP`]); the §3.1 primary-first policy is the walk
    /// order of these sets.
    ready: [ReadySet; 2],
    /// Completion events keyed by `complete_at`.
    calendar: Calendar,
    /// Scratch for the seqs completing this cycle (reused every cycle).
    scratch_events: Vec<u64>,
    /// Scratch for the issue candidates of this cycle.
    scratch_candidates: Vec<u64>,
    /// Scratch for the producer seqs of the entry being dispatched.
    /// Recycled `consumers` vectors (bounded by in-flight producers):
    /// broadcast returns each drained list here, dispatch hands them
    /// back out, so steady-state wakeup never allocates.
    consumer_pool: Vec<Vec<u64>>,
}

impl<'a> Machine<'a> {
    fn new(
        cfg: &'a MachineConfig,
        mode: ExecMode,
        faults: FaultConfig,
        watchdog: Option<u64>,
        cancel: Option<&'a AtomicBool>,
        attribution: bool,
        instr: Instrumentation<'a>,
    ) -> Self {
        let Instrumentation {
            tracer,
            metrics,
            profiler,
        } = instr;
        let trace_on = tracer.enabled();
        let metrics_on = metrics.enabled();
        let metrics_window = metrics.window_cycles().max(1);
        let dup_source_bank = match (mode, cfg.forwarding) {
            // The original DIE forwards strictly within each stream.
            (ExecMode::Die, _) => DUP,
            (ExecMode::DieIrb, ForwardingPolicy::PrimaryToBoth) => PRIMARY,
            (ExecMode::DieIrb, ForwardingPolicy::PerStream) => DUP,
            // A cluster forwards within itself.
            (ExecMode::DieCluster, _) => DUP,
            _ => PRIMARY,
        };
        let ruu = Ruu::new(cfg.ruu_size);
        let ring = ruu.slot_capacity();
        Machine {
            cfg,
            mode,
            cycle: 0,
            ruu,
            ifq: VecDeque::with_capacity(cfg.fetch_queue),
            ifq_reuse: VecDeque::with_capacity(cfg.fetch_queue),
            lookahead: None,
            source_done: false,
            rename_int: [[None; 32]; 2],
            rename_fp: [[None; 32]; 2],
            lsq_used: 0,
            last_store: FxHashMap::default(),
            frontend: FrontEnd::new(cfg),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            fu: FuBank::new(cfg.fu, cfg.latency),
            fu_dup: (mode == ExecMode::DieCluster).then(|| FuBank::new(cfg.fu, cfg.latency)),
            irb: mode.has_irb().then(|| {
                let mut irb = IrbUnit::new(cfg.irb);
                if attribution {
                    irb.enable_attribution();
                }
                irb
            }),
            inj: FaultInjector::new(faults),
            irb_fault_pc: FxHashMap::default(),
            watchdog,
            attribution,
            cancel,
            tracer,
            trace_on,
            metrics,
            metrics_on,
            metrics_window,
            window_start: 0,
            window_index: 0,
            win_base: WindowCounters::default(),
            profiler,
            rewound_this_cycle: false,
            prev_issue_saturated: false,
            stats: SimStats::default(),
            front_state: FrontState::Running,
            resume_at: 0,
            resume_reason: ResumeReason::None,
            icache_ready_at: 0,
            l1i_line_shift: cfg.hierarchy.l1i.line_bytes.trailing_zeros(),
            last_fetch_line: None,
            dcache_used: 0,
            wrong_path_pc: None,
            dup_source_bank,
            cycles_since_commit: 0,
            event_driven: cfg.engine == SchedEngine::EventDriven,
            ready: [ReadySet::new(ring), ReadySet::new(ring)],
            calendar: Calendar::new(),
            scratch_events: Vec::new(),
            scratch_candidates: Vec::new(),
            consumer_pool: Vec::new(),
        }
    }

    /// Emits one trace event. All arguments are plain scalars the call
    /// sites already hold, so the disabled path is a single branch with
    /// no allocation and no extra loads.
    #[inline]
    fn trace(&mut self, kind: TraceEventKind, seq: u64, pc: u64, stream: u8, arg: u64) {
        if self.trace_on {
            self.tracer.record(TraceEvent {
                cycle: self.cycle,
                kind,
                seq,
                pc,
                stream,
                arg,
            });
        }
    }

    /// Files a newly [`EntryState::Ready`] entry with its stream's
    /// bitset. Every `Ready` transition outside the issue loop must
    /// pass through here — the bitsets ARE the ready set under the
    /// event-driven engine.
    fn push_ready(&mut self, seq: u64, stream: Stream) {
        if self.event_driven {
            let q = if stream == Stream::Dup { DUP } else { PRIMARY };
            self.ready[q].insert(self.ruu.slot_of(seq));
        }
    }

    /// Clears an entry's ready bit after it leaves the `Ready` state in
    /// the issue loop (issued, bypassed, or found stale). Clearing both
    /// streams' sets is branch-free and correct: a slot is marked in at
    /// most its own stream's set.
    fn remove_ready(&mut self, seq: u64) {
        if self.event_driven {
            let slot = self.ruu.slot_of(seq);
            self.ready[PRIMARY].remove(slot);
            self.ready[DUP].remove(slot);
        }
    }

    /// Files a completion event for an entry entering
    /// [`EntryState::Issued`] with `complete_at = Some(at)`.
    fn schedule_completion(&mut self, at: u64, seq: u64) {
        if self.event_driven {
            self.calendar.schedule(at, self.cycle, seq);
        }
    }

    fn is_dual(&self) -> bool {
        self.mode.is_dual()
    }

    fn run(&mut self, source: &mut dyn InstructionSource) -> Result<SimStats, SimError> {
        loop {
            self.fill_lookahead(source)?;
            if self.source_done && self.ifq.is_empty() && self.ruu.is_empty() {
                break;
            }
            self.cycle += 1;
            self.begin_cycle();
            if self.profiler.is_some() {
                self.run_stages_profiled(source)?;
            } else {
                self.commit();
                self.writeback();
                self.issue();
                self.dispatch();
                self.fetch(source)?;
            }
            self.stats.ruu_occupancy_sum += self.ruu.len() as u64;
            self.cycles_since_commit += 1;
            if self.cycles_since_commit > 100_000 {
                return Err(SimError::Deadlock { cycle: self.cycle });
            }
            if let Some(flag) = self.cancel {
                // Poll every 64 cycles: cheap enough to bound reaction
                // latency, rare enough that the atomic load never shows
                // in profiles. Unarmed runs skip on the `Option` branch.
                if self.cycle & 0x3F == 0 && flag.load(Ordering::Relaxed) {
                    return Err(SimError::HostCancelled { cycle: self.cycle });
                }
            }
            if self.watchdog.is_some_and(|limit| self.cycle >= limit) {
                // Watchdog deadline: end the run cleanly. Faults still
                // unresolved never reached a terminal commit — a
                // livelock (e.g. a rewind storm) holds them in flight
                // forever — so they are classified as hangs.
                self.inj.resolve_all_pending(FaultOutcome::Hang, self.cycle);
                self.stats.watchdog_fired = true;
                break;
            }
            if self.metrics_on && self.cycle - self.window_start >= self.metrics_window {
                self.flush_window();
            }
        }
        // The final window is usually partial (a run rarely ends on a
        // boundary, and a watchdog break above skips the in-loop
        // check); flush whatever accumulated so window sums stay equal
        // to the whole-run totals.
        if self.metrics_on && self.cycle > self.window_start {
            self.flush_window();
        }
        self.finalize();
        Ok(std::mem::take(&mut self.stats))
    }

    /// The five stage calls with two monotonic-clock reads per stage,
    /// accounting host wall time to [`HostPhase`] buckets. Kept apart
    /// from the plain path so unprofiled runs pay only the
    /// `profiler.is_some()` branch.
    fn run_stages_profiled(&mut self, source: &mut dyn InstructionSource) -> Result<(), SimError> {
        let t0 = Instant::now();
        self.commit();
        let t1 = Instant::now();
        self.writeback();
        let t2 = Instant::now();
        self.issue();
        let t3 = Instant::now();
        self.dispatch();
        let t4 = Instant::now();
        let fetched = self.fetch(source);
        let t5 = Instant::now();
        if let Some(p) = self.profiler.as_mut() {
            p.add(HostPhase::Commit, t1 - t0);
            p.add(HostPhase::Writeback, t2 - t1);
            p.add(HostPhase::Execute, t3 - t2);
            p.add(HostPhase::Schedule, t4 - t3);
            p.add(HostPhase::Fetch, t5 - t4);
            p.cycles += 1;
        }
        fetched
    }

    /// Closes the window `[window_start, cycle)`: computes the exact
    /// counter deltas against the last boundary snapshot, reads the
    /// instantaneous ready-set size, and hands the sample to the sink.
    /// Every read is observational — enabling metrics cannot perturb
    /// the simulation.
    fn flush_window(&mut self) {
        let now = self.cumulative_counters();
        let counters = now.delta(&self.win_base);
        let ready_occupancy = self.ruu.ready_count();
        let sample = WindowSample {
            index: self.window_index,
            start_cycle: self.window_start,
            end_cycle: self.cycle,
            ready_occupancy,
            counters,
        };
        self.metrics.record_window(&sample);
        self.win_base = now;
        self.window_start = self.cycle;
        self.window_index += 1;
    }

    /// Snapshot of every cumulative counter the window series reports,
    /// read straight from the live pipeline state `finalize` also
    /// copies — which is what makes the window-sum conservation exact.
    fn cumulative_counters(&self) -> WindowCounters {
        let mut c = WindowCounters {
            committed_insts: self.stats.committed_insts,
            committed_copies: self.stats.committed_copies,
            active_commit_cycles: self.stats.active_commit_cycles,
            stalls: self.stats.stalls,
            fu_issues: self.stats.fu_issues,
            fu_bypasses: self.stats.fu_bypasses,
            int_alu_busy_cycles: self.fu.busy_cycles(Pool::IntAlu),
            ruu_occupancy_sum: self.stats.ruu_occupancy_sum,
            ..WindowCounters::default()
        };
        if let Some(irb) = &self.irb {
            let b = irb.buffer().stats();
            c.irb_lookups = b.lookups;
            c.irb_pc_hits = b.pc_hits;
            c.irb_victim_hits = b.victim_hits;
            c.irb_inserts = b.inserts;
            c.irb_conflict_evictions = b.conflict_evictions;
            let u = irb.stats();
            c.irb_reuse_passed = u.reuse_passed;
            c.irb_reuse_failed = u.reuse_failed;
            c.irb_lookups_port_starved = u.lookups_port_starved;
            c.irb_inserts_port_starved = u.inserts_port_starved;
            if let Some(attr) = irb.attribution() {
                for (i, cls) in attr.class_counters().iter().enumerate() {
                    c.attr_lookups[i] = cls.lookups;
                    c.attr_hits[i] = cls.hits;
                    c.attr_passes[i] = cls.passes;
                }
            }
        }
        c
    }

    fn fill_lookahead(&mut self, source: &mut dyn InstructionSource) -> Result<(), SimError> {
        if self.lookahead.is_none() && !self.source_done {
            match source.next_inst()? {
                Some(di) => self.lookahead = Some(di),
                None => self.source_done = true,
            }
        }
        Ok(())
    }

    fn begin_cycle(&mut self) {
        self.dcache_used = 0;
        self.rewound_this_cycle = false;
        let mut irb_strike = None;
        if let Some(irb) = &mut self.irb {
            irb.begin_cycle();
            // Particle strikes on the (unprotected) IRB array.
            if self.inj.enabled() {
                if let Some((slot, bit)) = self.inj.roll_irb_strike(irb.buffer().num_slots()) {
                    if irb.buffer_mut().inject_fault(slot, bit) {
                        let id = self.inj.record_irb_strike(self.cycle);
                        let pc = irb.buffer().slot_pc(slot);
                        if let Some(pc) = pc {
                            self.irb_fault_pc.insert(pc, id);
                        }
                        irb_strike = Some((id, pc.unwrap_or(0)));
                    }
                }
            }
        }
        if let Some((id, pc)) = irb_strike {
            self.trace(TraceEventKind::FaultInject, u64::from(id), pc, 2, 2);
        }
    }

    // ----- commit ---------------------------------------------------

    fn commit(&mut self) {
        let mut budget = self.cfg.commit_width;
        let mut committed_any = false;
        // The retirement window: consecutive done entries from the
        // head, counted once per cycle on the packed done-bit words.
        // Nothing in the loop marks new entries done, so the count only
        // needs decrementing as pairs retire.
        let mut done_run = self.ruu.done_run_from_head(self.cfg.commit_width);
        loop {
            let need = if self.is_dual() { 2 } else { 1 };
            if budget < need || done_run < need {
                break;
            }
            let head = self.ruu.head_seq();

            // DIE pair check.
            if self.is_dual() {
                let p_out = self.ruu.out_bits(head);
                let d_out = self.ruu.out_bits(head + 1);
                let tainted = self.ruu.fault_tainted(head) || self.ruu.fault_tainted(head + 1);
                if let (Some(pb), Some(db)) = (p_out, d_out) {
                    self.stats.pairs_checked += 1;
                    if pb != db {
                        self.rewind_pair(head);
                        break;
                    }
                    if tainted {
                        self.inj.stats_mut().escaped += 1;
                    }
                } else if tainted {
                    self.inj.stats_mut().escaped += 1;
                }
            } else if self.ruu.fault_tainted(head) {
                // No checking exists in SIE: silent corruption.
                self.inj.stats_mut().silent_sie += 1;
            }

            // Only the op kind is needed on the common path; the cold
            // `DynInst` record is touched solely for a memory op's
            // address, an attached tracer's identity fields, or the
            // IRB's commit-time update below.
            let is_store = self.ruu.is_store(head);
            let is_mem = self.ruu.is_mem(head);
            let ea = if is_mem { self.ruu.di(head).ea } else { None };
            let (di_seq, di_pc) = if self.trace_on {
                let d = self.ruu.di(head);
                (d.seq, d.pc)
            } else {
                // `trace` drops the event without reading these.
                (0, 0)
            };
            // Invariant: an untainted copy's comparator word equals the
            // architectural check value derived from the trace.
            debug_assert!(
                self.ruu.fault_tainted(head)
                    || self.ruu.out_bits(head).is_none()
                    || self.ruu.clean_check_bits(head) == self.ruu.out_bits(head)
            );

            // The pair's single architectural store access.
            if is_store {
                if self.dcache_used >= self.cfg.dcache.ports {
                    break; // retry next cycle
                }
                self.dcache_used += 1;
                let _ = self.hierarchy.write_data(ea.expect("store has an address"));
            }

            // Commit-time IRB update (§3.2: off the critical path).
            if self.irb.is_some() {
                let insert = match self.mode {
                    // Update on executions the IRB did not serve.
                    ExecMode::DieIrb => self.ruu.executed_on_fu(head + 1),
                    ExecMode::SieIrb => self.ruu.executed_on_fu(head),
                    _ => false,
                };
                let insert_allowed = !self.cfg.reuse_long_latency_only
                    || matches!(
                        self.ruu.class(head),
                        OpClass::IntMul
                            | OpClass::IntDiv
                            | OpClass::FpAdd
                            | OpClass::FpMul
                            | OpClass::FpDiv
                            | OpClass::FpSqrt
                    );
                let mut inserted = false;
                let mut insert_denied = false;
                if let Some(irb) = self.irb.as_mut() {
                    if insert && insert_allowed {
                        let starved_before = irb.stats().inserts_port_starved;
                        inserted = irb.try_insert(self.ruu.di(head));
                        insert_denied =
                            !inserted && irb.stats().inserts_port_starved > starved_before;
                    }
                    irb.on_register_write(self.ruu.di(head));
                }
                if inserted {
                    self.trace(TraceEventKind::IrbInsert, di_seq, di_pc, 0, 0);
                } else if insert_denied {
                    self.trace(TraceEventKind::IrbPortDenied, di_seq, di_pc, 0, 1);
                }
            }

            // Retire. A committing store tears down its store-address
            // map entry (unless a newer in-flight store to the same
            // address overwrote it), keeping `last_store` bounded by
            // the LSQ instead of growing with the trace. Readers treat
            // a committed seq and a missing key identically, so this
            // changes no timing.
            if is_store {
                let key = ea.expect("store has an address") & !7;
                if self.last_store.get(&key) == Some(&head) {
                    self.last_store.remove(&key);
                }
            }
            if self.inj.enabled() {
                for s in 0..need as u64 {
                    self.resolve_commit_faults(head + s);
                }
            }
            for _ in 0..need {
                self.ruu.pop();
            }
            if is_mem {
                self.lsq_used -= 1;
            }
            self.stats.committed_insts += 1;
            self.stats.committed_copies += need as u64;
            self.trace(TraceEventKind::Commit, di_seq, di_pc, 0, need as u64);
            budget -= need;
            done_run -= need;
            committed_any = true;
            self.cycles_since_commit = 0;
        }
        if committed_any {
            self.stats.active_commit_cycles += 1;
        } else {
            self.attribute_stall();
        }
    }

    /// Charges a cycle in which nothing retired to exactly one
    /// [`StallBreakdown`](crate::StallBreakdown) cause, keyed off the
    /// oldest unretired copy — the instruction gating commit. Runs once
    /// per non-committing cycle, so together with
    /// `active_commit_cycles` it partitions the run:
    /// `active_commit_cycles + stalls.total() == cycles`.
    ///
    /// The classification reads only architected pipeline state (RUU
    /// entries, reuse state, last cycle's issue saturation), which both
    /// scheduling engines keep bit-identical — so the breakdown is
    /// engine-independent by the same argument as the rest of
    /// `SimStats`.
    fn attribute_stall(&mut self) {
        if self.rewound_this_cycle {
            self.stats.stalls.rewind += 1;
            return;
        }
        if self.ruu.is_empty() {
            self.stats.stalls.frontend_empty += 1;
            return;
        }
        let head = self.ruu.head_seq();
        // In dual modes the pair retires together: blame the copy that
        // is not done yet (the primary first, then its duplicate).
        let blocker = if self.is_dual() && self.ruu.is_done(head) {
            head + 1
        } else {
            head
        };
        if !self.ruu.contains(blocker) {
            self.stats.stalls.commit_blocked += 1;
            return;
        }
        let state = self.ruu.state(blocker);
        let reuse = self.ruu.reuse_tag(blocker);
        let s = &mut self.stats.stalls;
        match state {
            EntryState::Waiting => s.waiting_deps += 1,
            EntryState::Ready => {
                if reuse == ReuseTag::PortStarved {
                    s.irb_port += 1;
                } else if self.prev_issue_saturated {
                    s.issue_starved += 1;
                } else {
                    s.fu_contention += 1;
                }
            }
            EntryState::Issued | EntryState::WaitingPair => s.execution += 1,
            EntryState::Done => s.commit_blocked += 1,
        }
    }

    /// Commit of one copy under fault injection: faults riding on a
    /// tainted copy that delivers a wrong architectural value resolve
    /// as silent corruption; faults whose corruption cancelled out (or
    /// never produced a comparator word) stay pending and fall out as
    /// masked at the end of the run.
    fn resolve_commit_faults(&mut self, seq: u64) {
        if self.ruu.fault_ids_is_empty(seq) {
            return;
        }
        let out = self.ruu.out_bits(seq);
        let silent =
            self.ruu.fault_tainted(seq) && out.is_some() && out != self.ruu.clean_check_bits(seq);
        let ids = self.ruu.take_fault_ids(seq);
        if silent {
            for id in ids {
                self.inj.resolve_silent(id, self.cycle);
            }
        }
    }

    /// Pair mismatch at commit: the paper's instruction rewind. Both
    /// copies re-execute on the functional units; the front end pays a
    /// flush penalty.
    fn rewind_pair(&mut self, head: u64) {
        self.stats.pair_mismatches += 1;
        self.rewound_this_cycle = true;
        self.inj.stats_mut().detected += 1;
        if self.trace_on {
            let (di_seq, di_pc) = {
                let d = self.ruu.di(head);
                (d.seq, d.pc)
            };
            self.trace(TraceEventKind::Rewind, di_seq, di_pc, 2, 0);
        }
        // Recovery cost attributed to the faults being detected: the
        // in-flight copies behind the pair (the window exposed to the
        // rewind) and the front-end re-fetch penalty.
        let squash_depth = self.ruu.len() as u64 - 2;
        let refetch = self.cfg.mispredict_penalty;
        for seq in [head, head + 1] {
            self.ruu.set_state(seq, EntryState::Ready);
            self.ruu.set_ready_at(seq, self.cycle);
            self.ruu.clear_complete_at(seq);
            self.ruu.set_out_bits(seq, None);
            self.ruu.set_executed_on_fu(seq, false);
            self.ruu.set_fault_tainted(seq, false);
            self.ruu.clear_input_corrupt(seq);
            // Force the re-execution down the functional units.
            self.ruu.set_reuse(seq, ReuseState::NotEligible);
            let ids = self.ruu.take_fault_ids(seq);
            let stream = self.ruu.stream(seq);
            let di_pc = self.ruu.di(seq).pc;
            for id in ids {
                self.inj
                    .resolve_detected(id, self.cycle, squash_depth, refetch);
                self.trace(TraceEventKind::FaultDetect, u64::from(id), di_pc, 2, 0);
            }
            self.push_ready(seq, stream);
        }
        let resume = self.cycle + self.cfg.mispredict_penalty;
        if resume > self.resume_at {
            self.resume_at = resume;
            self.resume_reason = ResumeReason::BranchRecovery;
        }
    }

    // ----- writeback ------------------------------------------------

    fn writeback(&mut self) {
        let mut completing = std::mem::take(&mut self.scratch_events);
        if self.event_driven {
            self.calendar.pop_due(self.cycle, &mut completing);
        } else {
            completing.clear();
            self.ruu.collect_completing(self.cycle, &mut completing);
        }
        for &seq in &completing {
            // The scan selected on exactly this predicate; re-checking
            // it at pop time keeps the engines interchangeable and
            // makes any stale calendar event a no-op.
            if !self.ruu.contains(seq)
                || self.ruu.state(seq) != EntryState::Issued
                || !self.ruu.completes_at(seq, self.cycle)
            {
                continue;
            }
            if self.ruu.is_dup(seq) && self.ruu.is_load(seq) && !self.ruu.is_done(seq - 1) {
                // Address work done; the pair's single data access
                // has not returned yet.
                self.ruu.set_state(seq, EntryState::WaitingPair);
                continue;
            }
            self.mark_done(seq);
        }
        self.scratch_events = completing;
    }

    /// Finalizes an entry: broadcast, branch resolution, pair wakeup.
    fn mark_done(&mut self, seq: u64) {
        self.ruu.set_state(seq, EntryState::Done);
        if self.ruu.complete_at(seq).is_none() {
            self.ruu.set_complete_at(seq, self.cycle);
        }
        if self.trace_on {
            let (di_seq, di_pc) = {
                let d = self.ruu.di(seq);
                (d.seq, d.pc)
            };
            self.trace(
                TraceEventKind::Writeback,
                di_seq,
                di_pc,
                stream_code(self.ruu.stream(seq)),
                0,
            );
        }
        self.resolve_control(seq);
        self.broadcast(seq);

        // A completing primary load releases its duplicate. In the
        // clustered organization the data crosses clusters first.
        // (Stream and kind are immutable per entry, so reading them
        // after the broadcast is equivalent — and single-stream modes
        // skip the lane reads entirely.)
        if self.is_dual() && self.ruu.stream(seq) == Stream::Primary && self.ruu.is_load(seq) {
            let partner = seq + 1;
            if self.ruu.contains(partner) && self.ruu.state(partner) == EntryState::WaitingPair {
                if self.mode == ExecMode::DieCluster && self.cfg.cluster_delay > 0 {
                    let at = self.cycle + self.cfg.cluster_delay;
                    self.ruu.set_state(partner, EntryState::Issued);
                    self.ruu.set_complete_at(partner, at);
                    self.schedule_completion(at, partner);
                } else {
                    self.mark_done(partner);
                }
            }
        }
    }

    /// First-resolver branch handling: train the predictors and release
    /// a waiting front end (the paper: recovery starts as soon as
    /// *either* stream resolves).
    fn resolve_control(&mut self, seq: u64) {
        if !self.ruu.is_control(seq) || self.ruu.resolution_reported(seq) {
            return;
        }
        let di_seq = self.ruu.di(seq).seq;
        let stream = self.ruu.stream(seq);
        // Train through the borrow — `frontend` and `ruu` are disjoint
        // fields, so no `DynInst` copy is needed.
        self.frontend.train(self.ruu.di(seq));
        self.ruu.set_resolution_reported(seq);
        if self.is_dual() {
            let partner = match stream {
                Stream::Primary => seq + 1,
                Stream::Dup => seq - 1,
            };
            if self.ruu.contains(partner) {
                self.ruu.set_resolution_reported(partner);
            }
        }
        if self.front_state == FrontState::WaitBranch(di_seq) {
            self.front_state = FrontState::Running;
            self.wrong_path_pc = None;
            let resume = self.cycle + self.cfg.mispredict_penalty;
            if resume > self.resume_at {
                self.resume_at = resume;
                self.resume_reason = ResumeReason::BranchRecovery;
            }
        }
    }

    /// Result broadcast: wake consumers, possibly striking the bus.
    fn broadcast(&mut self, seq: u64) {
        if self.ruu.consumers_is_empty(seq) {
            return;
        }
        let mut consumers = self.ruu.take_consumers(seq);
        let strike = if self.inj.enabled() {
            self.inj.strike_forward(self.cycle)
        } else {
            None
        };
        if let Some((_, id)) = strike {
            self.trace(TraceEventKind::FaultInject, u64::from(id), 0, 2, 1);
        }
        for &c in &consumers {
            if !self.ruu.contains(c) {
                continue;
            }
            if let Some((mask, id)) = strike {
                self.ruu.xor_input_corrupt(c, mask);
                self.ruu.set_fault_tainted(c, true);
                self.ruu.push_fault_id(c, id);
            }
            if self.ruu.deps_remaining(c) > 0
                && self.ruu.dec_deps(c) == 0
                && self.ruu.state(c) == EntryState::Waiting
            {
                self.ruu.set_state(c, EntryState::Ready);
                self.ruu.set_ready_at(c, self.cycle);
                let stream = self.ruu.stream(c);
                self.push_ready(c, stream);
            }
        }
        consumers.clear();
        self.consumer_pool.push(consumers);
    }

    // ----- issue ----------------------------------------------------

    fn issue(&mut self) {
        if self.event_driven {
            // Idle-cycle fast path: with nothing ready the candidate
            // walk, the policy selection and the loop are all no-ops,
            // so skip straight to the one observable side effect.
            let [primary, dup] = &self.ready;
            if primary.is_empty() && dup.is_empty() {
                self.prev_issue_saturated = false;
                return;
            }
        }
        let mut issued = 0usize;
        // DIE-IRB selection policy (§3.1): the primary stream owns the
        // functional units — duplicates are IRB candidates first and
        // contend for leftover FU slots second. Plain DIE keeps the
        // symmetric oldest-first policy of the original proposal.
        let primary_first = match self.cfg.issue_policy {
            IssuePolicy::ModeDefault => self.mode == ExecMode::DieIrb,
            IssuePolicy::OldestFirst => false,
            IssuePolicy::PrimaryFirst => self.is_dual(),
        };
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        if self.event_driven {
            // Walking the bitsets up front snapshots the ready set
            // exactly as the scan did: entries woken by a mid-issue
            // broadcast set their bit but are not in this cycle's
            // candidate list. The walk is windowed to the live RUU
            // span, so ring order equals ascending seq order.
            let base_seq = self.ruu.head_seq();
            let base_slot = self.ruu.slot_of(base_seq);
            let len = self.ruu.len();
            let [primary, dup] = &self.ready;
            if primary_first {
                primary.append_ring(base_slot, len, base_seq, &mut candidates);
                dup.append_ring(base_slot, len, base_seq, &mut candidates);
            } else if !self.is_dual() {
                // Single-stream modes never populate the dup set; the
                // union walk would read a second word array of zeros.
                primary.append_ring(base_slot, len, base_seq, &mut candidates);
            } else {
                ReadySet::append_union_ring(
                    primary,
                    dup,
                    base_slot,
                    len,
                    base_seq,
                    &mut candidates,
                );
            }
        } else {
            self.ruu.collect_ready(&mut candidates);
            if primary_first {
                candidates.sort_by_key(|&s| (self.ruu.is_dup(s), s));
            }
        }
        // Without an IRB every entry's reuse state is NotEligible, so
        // `try_bypass` can never fire: skip the call, and stop scanning
        // entirely once the issue slots are gone.
        let has_irb = self.irb.is_some();
        let mut saturated = false;
        // Pools that denied an attempt this cycle, one bit per pool per
        // bank. `UnitPool::try_issue` never frees a unit mid-cycle, so a
        // denial repeats for every later same-pool candidate in this
        // pass and the re-probe can be skipped. The failed probe has no
        // side effects, so the skip is observationally identical.
        let mut full_pools = [0u8; 2];
        // Same argument for data-cache ports: `dcache_used` only grows
        // within a cycle, so one port denial repeats for every later
        // port-needing load this pass.
        let mut ports_full = false;
        for &seq in &candidates {
            // Post-saturation fast path: once width exhaustion has
            // been recorded, only reuse-hit entries can still act (a
            // bypass consumes no issue slot), so every other candidate
            // skips on a single lane read. The guards below were
            // side-effect-free for such entries, and `saturated` stays
            // true, so the skip is observationally identical.
            if saturated && self.ruu.reuse_tag(seq) != ReuseTag::Hit {
                continue;
            }
            // The still-ready guard and the attempt fields are one-byte
            // lane reads; most attempts fail, so a losing candidate
            // costs a few packed bytes, not a record walk.
            if !self.ruu.contains(seq) {
                continue;
            }
            if self.ruu.state(seq) != EntryState::Ready {
                self.remove_ready(seq);
                continue;
            }
            let attempt = FuAttempt {
                class: self.ruu.class(seq),
                is_load: self.ruu.is_load(seq),
                is_dup: self.ruu.is_dup(seq),
                input_corrupt: self.ruu.input_corrupt(seq),
            };
            // Reuse-test bypass. With a data-capture scheduler this
            // consumes neither issue bandwidth nor a functional unit
            // (§3.3); the non-data-capture models charge their costs
            // inside `try_bypass`.
            if has_irb && self.try_bypass(seq, &mut issued) {
                self.remove_ready(seq);
                continue;
            }
            if issued >= self.cfg.issue_width {
                saturated = true;
                if has_irb {
                    continue;
                }
                break;
            }
            let bank = usize::from(attempt.is_dup && self.fu_dup.is_some());
            let pool_bit = 1u8 << self.fu.pool_index(attempt.class);
            if full_pools[bank] & pool_bit != 0 {
                continue;
            }
            if ports_full && attempt.is_load && (!attempt.is_dup || !self.is_dual()) {
                continue;
            }
            match self.try_fu_issue(seq, attempt) {
                FuIssueOutcome::Issued => {
                    issued += 1;
                    self.remove_ready(seq);
                }
                FuIssueOutcome::NoUnit => full_pools[bank] |= pool_bit,
                FuIssueOutcome::NoPort => ports_full = true,
            }
        }
        // Entries that lost arbitration (no unit, no port, lookup in
        // flight) are still Ready and keep their bit for next cycle.
        self.scratch_candidates = candidates;
        self.prev_issue_saturated = saturated;
    }

    /// Attempts the IRB reuse test on a ready entry. Returns `true` if
    /// the entry bypassed the functional units this cycle.
    fn try_bypass(&mut self, seq: u64, issued: &mut usize) -> bool {
        if self.ruu.reuse_tag(seq) != ReuseTag::Hit {
            return false;
        }
        if self.cycle < self.ruu.lookup_done_at(seq) {
            return false; // lookup still in its pipelined stages
        }
        // Non-data-capture timing (§3.3): the reuse test follows the
        // register-file read, one cycle after wakeup.
        if self.cfg.scheduler == SchedulerModel::NonDataCapturePipelined
            && self.cycle < self.ruu.ready_at(seq) + 1
        {
            return false;
        }
        // Naive non-data-capture: the duplicate must win selection and a
        // functional unit before its operands (and so the reuse test)
        // exist. That path is charged inside `try_fu_issue`, which runs
        // the reuse test after allocation; nothing to do here.
        if self.cfg.scheduler == SchedulerModel::NonDataCaptureNaive {
            let _ = issued;
            return false;
        }
        let hit = self.ruu.reuse_hit(seq);
        let is_load = self.ruu.is_load(seq);
        // An operand corrupted on the forwarding bus can never match the
        // buffered operands: the test fails and the copy re-executes.
        if self.ruu.input_corrupt(seq) != 0 {
            self.ruu.set_reuse(seq, ReuseState::Failed);
            return false;
        }
        // SIE-IRB loads still perform the (single) data access; make
        // sure a port exists before burning the reuse test.
        if is_load && !self.is_dual() && self.dcache_used >= self.cfg.dcache.ports {
            return false;
        }
        {
            let irb = self.irb.as_mut().expect("IRB mode");
            if !irb.reuse_test(&hit, self.ruu.di(seq)) {
                self.ruu.set_reuse(seq, ReuseState::Failed);
                return false;
            }
        }

        // Passed: the buffered result (possibly struck by an IRB fault)
        // becomes this copy's output.
        self.stats.fu_bypasses += 1;
        let produced = hit.result;
        let (clean, out, di_seq, di_pc, ea) = {
            let di = self.ruu.di(seq);
            (
                reuse_output(di),
                finalize_out(di, produced),
                di.seq,
                di.pc,
                di.ea,
            )
        };
        let stream = self.ruu.stream(seq);
        self.trace(TraceEventKind::Issue, di_seq, di_pc, stream_code(stream), 0);
        self.ruu.set_reuse(seq, ReuseState::Passed);
        self.ruu.set_out_bits(seq, Some(out));
        if produced != clean {
            self.ruu.set_fault_tainted(seq, true);
            // Attribute the corrupt buffered result to the IRB
            // strike that hit this PC's slot.
            if let Some(&id) = self.irb_fault_pc.get(&hit.pc) {
                self.ruu.push_fault_id(seq, id);
            }
        }

        if is_load {
            if self.is_dual() {
                // The duplicate's data rides the pair's shared access.
                if self.ruu.is_done(seq - 1) {
                    self.mark_done(seq);
                } else {
                    self.ruu.set_state(seq, EntryState::WaitingPair);
                }
            } else {
                // SIE-IRB: address calc skipped, data access remains.
                self.dcache_used += 1;
                let ea = ea.expect("load has an address");
                let at = self.cycle + self.hierarchy.read_data(ea);
                self.ruu.set_state(seq, EntryState::Issued);
                self.ruu.set_complete_at(seq, at);
                self.schedule_completion(at, seq);
            }
        } else {
            self.mark_done(seq);
        }
        true
    }

    /// Attempts to issue a ready entry to its functional-unit pool.
    /// `attempt` carries the entry fields the caller already read;
    /// the full `DynInst` is copied only after a unit is secured.
    fn try_fu_issue(&mut self, seq: u64, attempt: FuAttempt) -> FuIssueOutcome {
        let FuAttempt {
            class,
            is_load,
            is_dup,
            input_corrupt,
        } = attempt;
        let needs_dcache = is_load && (!is_dup || !self.is_dual());
        if needs_dcache && self.dcache_used >= self.cfg.dcache.ports {
            return FuIssueOutcome::NoPort;
        }
        let bank = match &mut self.fu_dup {
            Some(dup) if is_dup => dup,
            _ => &mut self.fu,
        };
        let Some(done) = bank.try_issue(class, self.cycle) else {
            return FuIssueOutcome::NoUnit;
        };
        self.stats.fu_issues += 1;

        // Naive non-data-capture (§3.3): the operands arrive only now,
        // after selection and allocation; a passing reuse test wastes
        // the unit but still supplies the result immediately — a
        // latency win with no bandwidth win.
        if self.cfg.scheduler == SchedulerModel::NonDataCaptureNaive
            && self.ruu.reuse_tag(seq) == ReuseTag::Hit
            && self.cycle >= self.ruu.lookup_done_at(seq)
            && input_corrupt == 0
        {
            let hit = self.ruu.reuse_hit(seq);
            let passed = {
                let irb = self.irb.as_mut().expect("IRB mode");
                irb.reuse_test(&hit, self.ruu.di(seq))
            };
            if passed {
                self.stats.fu_bypasses += 1;
                let produced = hit.result;
                let (clean, out, di_seq, di_pc) = {
                    let di = self.ruu.di(seq);
                    (reuse_output(di), finalize_out(di, produced), di.seq, di.pc)
                };
                self.ruu.set_reuse(seq, ReuseState::Passed);
                self.ruu.set_out_bits(seq, Some(out));
                if produced != clean {
                    self.ruu.set_fault_tainted(seq, true);
                    if let Some(&id) = self.irb_fault_pc.get(&hit.pc) {
                        self.ruu.push_fault_id(seq, id);
                    }
                }
                self.trace(TraceEventKind::Issue, di_seq, di_pc, u8::from(is_dup), 0);
                if is_load && self.is_dual() {
                    if self.ruu.is_done(seq - 1) {
                        self.mark_done(seq);
                    } else {
                        self.ruu.set_state(seq, EntryState::WaitingPair);
                    }
                } else {
                    self.mark_done(seq);
                }
                return FuIssueOutcome::Issued;
            }
            self.ruu.set_reuse(seq, ReuseState::Failed);
        }

        // Produce this copy's bits, through the fault model.
        let produced = produced_bits(self.ruu.di(seq)).map(|p| p ^ input_corrupt);
        let (out, struck) = match produced {
            Some(p) => {
                let (pb, fid) = self.inj.strike_fu(p, self.cycle);
                (Some(finalize_out(self.ruu.di(seq), pb)), fid)
            }
            None => (None, None),
        };

        let mut complete_at = done;
        if needs_dcache {
            let ea = self.ruu.di(seq).ea.expect("load has an address");
            // Store-to-load forwarding: if the producing store is still
            // in flight in the LSQ, the data comes from its entry in a
            // single cycle instead of a cache access.
            let forwarded = self.cfg.stl_forwarding
                && self
                    .last_store
                    .get(&(ea & !7))
                    .is_some_and(|&s| self.ruu.contains(s));
            if forwarded {
                complete_at = done + 1;
            } else {
                self.dcache_used += 1;
                complete_at = done + self.hierarchy.read_data(ea);
            }
        }
        self.ruu.set_state(seq, EntryState::Issued);
        self.ruu.set_executed_on_fu(seq, true);
        self.ruu.set_complete_at(seq, complete_at);
        self.ruu.set_out_bits(seq, out);
        if let Some(id) = struck {
            self.ruu.set_fault_tainted(seq, true);
            self.ruu.push_fault_id(seq, id);
        }
        self.schedule_completion(complete_at, seq);
        if self.trace_on {
            let (di_seq, di_pc) = {
                let d = self.ruu.di(seq);
                (d.seq, d.pc)
            };
            let stream = u8::from(is_dup);
            self.trace(TraceEventKind::Issue, di_seq, di_pc, stream, 1);
            let dur = complete_at.saturating_sub(self.cycle).max(1);
            self.trace(TraceEventKind::Execute, di_seq, di_pc, stream, dur);
            if let Some(id) = struck {
                self.trace(TraceEventKind::FaultInject, u64::from(id), di_pc, stream, 0);
            }
        }
        FuIssueOutcome::Issued
    }

    // ----- dispatch -------------------------------------------------

    fn dispatch(&mut self) {
        let mut budget = self.cfg.decode_width;
        loop {
            let need = if self.is_dual() { 2 } else { 1 };
            if budget < need {
                break;
            }
            let Some(front) = self.ifq.front() else { break };
            let is_mem = front.di.inst.op.is_mem();
            if self.ruu.free() < need {
                self.stats.dispatch_stalls_ruu += 1;
                break;
            }
            if is_mem && self.lsq_used >= self.cfg.lsq_size {
                self.stats.dispatch_stalls_lsq += 1;
                break;
            }
            let fetched = self.ifq.pop_front().expect("front exists");
            let reuse = if self.irb.is_some() {
                self.ifq_reuse.pop_front().expect("parallel to ifq")
            } else {
                ReuseState::NotEligible
            };
            self.dispatch_one(fetched, reuse);
            budget -= need;
        }
    }

    fn dispatch_one(&mut self, fetched: FetchedInst, reuse: ReuseState) {
        let di = fetched.di;
        // Primary copy. Producers are strictly older than the entry
        // being linked, so pushing before linking cannot self-link.
        let pseq = self.ruu.push(di, Stream::Primary);
        if self.mode == ExecMode::SieIrb {
            self.ruu.set_reuse(pseq, reuse);
            self.ruu.set_lookup_done_at(pseq, fetched.lookup_done_at);
        }
        let deps = self.link_deps(pseq, &di, PRIMARY, true);
        self.ruu.set_deps_remaining(pseq, deps);
        let primary_ready = deps == 0;
        if primary_ready {
            self.ruu.set_state(pseq, EntryState::Ready);
            self.ruu.set_ready_at(pseq, self.cycle);
        }
        self.trace(TraceEventKind::Dispatch, di.seq, di.pc, 0, 0);
        if primary_ready {
            self.push_ready(pseq, Stream::Primary);
        }

        // Duplicate copy — shares the primary's record lane instead of
        // storing a second identical `DynInst`.
        if self.is_dual() {
            let dseq = self.ruu.push_dup_shared();
            if self.mode == ExecMode::DieIrb {
                self.ruu.set_reuse(dseq, reuse);
                self.ruu.set_lookup_done_at(dseq, fetched.lookup_done_at);
            }
            let deps = self.link_deps(dseq, &di, self.dup_source_bank, false);
            self.ruu.set_deps_remaining(dseq, deps);
            let dup_ready = deps == 0;
            if dup_ready {
                self.ruu.set_state(dseq, EntryState::Ready);
                self.ruu.set_ready_at(dseq, self.cycle);
            }
            self.trace(TraceEventKind::Dispatch, di.seq, di.pc, 1, 0);
            if dup_ready {
                self.push_ready(dseq, Stream::Dup);
            }
        }

        // Rename updates (after both copies read the old mappings).
        if let Some(rd) = di.inst.int_dest() {
            if !rd.is_zero() {
                self.rename_int[PRIMARY][rd.index()] = Some(pseq);
                if self.is_dual() {
                    self.rename_int[DUP][rd.index()] = Some(pseq + 1);
                }
            }
        }
        if let Some(fd) = di.inst.fp_dest() {
            self.rename_fp[PRIMARY][fd.index()] = Some(pseq);
            if self.is_dual() {
                self.rename_fp[DUP][fd.index()] = Some(pseq + 1);
            }
        }

        // LSQ bookkeeping: one slot per architected memory op; the
        // store-address map feeds memory-dependence edges.
        if di.inst.op.is_mem() {
            self.lsq_used += 1;
            if di.inst.op.is_store() {
                let ea = di.ea.expect("store has an address");
                self.last_store.insert(ea & !7, pseq);
            }
        }
    }

    /// Registers producer→consumer edges; returns the dependence count.
    fn link_deps(&mut self, myseq: u64, di: &DynInst, bank: usize, is_primary: bool) -> u32 {
        // At most two register sources plus one memory dependence; the
        // producer list lives on the stack.
        let mut producers = [0u64; 3];
        let mut n = 0;
        for r in di.inst.int_sources() {
            if r.is_zero() {
                continue;
            }
            if let Some(p) = self.rename_int[bank][r.index()] {
                producers[n] = p;
                n += 1;
            }
        }
        for f in di.inst.fp_sources() {
            if let Some(p) = self.rename_fp[bank][f.index()] {
                producers[n] = p;
                n += 1;
            }
        }
        // Memory dependence: the copy that performs the access waits
        // for the newest earlier store to the same (aligned) address.
        if di.inst.op.is_load() && (is_primary || !self.is_dual()) {
            let ea = di.ea.expect("load has an address");
            if let Some(&s) = self.last_store.get(&(ea & !7)) {
                producers[n] = s;
                n += 1;
            }
        }
        let mut deps = 0;
        for &p in &producers[..n] {
            // A producer touched for the first time gets a recycled
            // consumers vector so its first push does not allocate.
            let mut spare = self.consumer_pool.pop();
            if self.ruu.push_consumer(p, myseq, &mut spare) {
                deps += 1;
            }
            if let Some(v) = spare {
                self.consumer_pool.push(v);
            }
        }
        deps
    }

    // ----- fetch ----------------------------------------------------

    fn fetch(&mut self, source: &mut dyn InstructionSource) -> Result<(), SimError> {
        if matches!(self.front_state, FrontState::WaitBranch(_)) {
            self.stats.fetch_stalls_branch += 1;
            // Wrong-path pollution: keep the I-cache streaming down the
            // mispredicted path, one line per cycle.
            if let Some(wp) = self.wrong_path_pc {
                let line_bytes = self.cfg.hierarchy.l1i.line_bytes;
                let _ = self.hierarchy.fetch_inst(wp);
                self.last_fetch_line = Some(wp >> self.l1i_line_shift);
                self.wrong_path_pc = Some(wp + line_bytes);
            }
            return Ok(());
        }
        if self.cycle < self.resume_at {
            match self.resume_reason {
                ResumeReason::BtbBubble => self.stats.fetch_stalls_btb += 1,
                _ => self.stats.fetch_stalls_branch += 1,
            }
            return Ok(());
        }
        if self.cycle < self.icache_ready_at {
            self.stats.fetch_stalls_icache += 1;
            return Ok(());
        }
        self.fill_lookahead(source)?;
        if self.lookahead.is_none() {
            return Ok(());
        }
        if self.ifq.len() >= self.cfg.fetch_queue {
            self.stats.fetch_stalls_queue += 1;
            return Ok(());
        }

        let hit_lat = self.cfg.hierarchy.l1i.hit_latency;
        let mut fetched = 0usize;

        while fetched < self.cfg.fetch_width && self.ifq.len() < self.cfg.fetch_queue {
            self.fill_lookahead(source)?;
            let Some(di) = self.lookahead else { break };
            // Touch the I-cache once per new line the group walks into
            // (SimpleScalar-style: the group may span line boundaries as
            // long as every line hits).
            let line = di.pc >> self.l1i_line_shift;
            if self.last_fetch_line != Some(line) {
                let lat = self.hierarchy.fetch_inst(di.pc);
                self.last_fetch_line = Some(line);
                if lat > hit_lat {
                    self.icache_ready_at = self.cycle + lat;
                    if fetched == 0 {
                        self.stats.fetch_stalls_icache += 1;
                    }
                    return Ok(());
                }
            }

            // Consume the instruction.
            self.lookahead = None;
            // Keep the attribution loop tracker current for *every*
            // fetched instruction (a backedge may be reuse-filtered but
            // still opens a loop), before the instruction's own lookup
            // so a backedge's events land in its own loop.
            if let Some(irb) = &mut self.irb {
                irb.note_fetched(&di);
            }
            let reuse_allowed = !self.cfg.reuse_long_latency_only
                || matches!(
                    di.class(),
                    OpClass::IntMul
                        | OpClass::IntDiv
                        | OpClass::FpAdd
                        | OpClass::FpMul
                        | OpClass::FpDiv
                        | OpClass::FpSqrt
                );
            let (reuse, lookup_done_at) = match &mut self.irb {
                Some(irb) if reuse_allowed => irb.start_lookup(&di, self.cycle),
                _ => (ReuseState::NotEligible, self.cycle),
            };
            self.ifq.push_back(FetchedInst { di, lookup_done_at });
            if self.irb.is_some() {
                self.ifq_reuse.push_back(reuse);
            }
            fetched += 1;
            if self.trace_on {
                self.trace(TraceEventKind::Fetch, di.seq, di.pc, 0, 0);
                match reuse {
                    ReuseState::Hit(_) => {
                        self.trace(TraceEventKind::IrbLookup, di.seq, di.pc, 0, 0);
                        self.trace(TraceEventKind::IrbHit, di.seq, di.pc, 0, 0);
                    }
                    ReuseState::PcMiss => {
                        self.trace(TraceEventKind::IrbLookup, di.seq, di.pc, 0, 0);
                    }
                    ReuseState::PortStarved => {
                        self.trace(TraceEventKind::IrbPortDenied, di.seq, di.pc, 0, 0);
                    }
                    _ => {}
                }
            }

            let outcome = if self.cfg.perfect_branch_prediction {
                // Oracle: taken control flow still ends the fetch group
                // (one redirect per cycle), but never stalls.
                self.frontend.train(&di);
                if di.redirects() {
                    FetchOutcome::TakenPredicted
                } else {
                    FetchOutcome::Sequential
                }
            } else {
                self.frontend.assess(&di)
            };
            match outcome {
                FetchOutcome::Sequential => {}
                FetchOutcome::TakenPredicted => break,
                FetchOutcome::TakenBtbMiss => {
                    let resume = self.cycle + self.cfg.btb_miss_penalty;
                    if resume > self.resume_at {
                        self.resume_at = resume;
                        self.resume_reason = ResumeReason::BtbBubble;
                    }
                    break;
                }
                FetchOutcome::Mispredict => {
                    self.front_state = FrontState::WaitBranch(di.seq);
                    if self.cfg.wrong_path_fetch {
                        // The path the front end *would* have followed:
                        // the wrong side of the branch.
                        let ctrl = di.control.expect("mispredicts are control insts");
                        self.wrong_path_pc = Some(if ctrl.taken {
                            di.fallthrough_pc()
                        } else {
                            ctrl.target
                        });
                    }
                    break;
                }
            }
        }
        Ok(())
    }

    // ----- finalize -------------------------------------------------

    fn finalize(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.l1i = *self.hierarchy.stats(Level::L1I);
        self.stats.l1d = *self.hierarchy.stats(Level::L1D);
        self.stats.l2 = *self.hierarchy.stats(Level::L2);
        let f = self.frontend.stats();
        self.stats.branches = BranchSummary {
            cond_branches: f.cond_branches,
            cond_mispredicts: f.cond_mispredicts,
            indirect_jumps: f.indirect_jumps,
            indirect_mispredicts: f.indirect_mispredicts,
            btb_miss_bubbles: f.btb_miss_bubbles,
        };
        self.stats.int_alu_busy_cycles = self.fu.busy_cycles(Pool::IntAlu);
        self.stats.int_alu_ops = [
            OpClass::IntAlu,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
            OpClass::Jump,
            OpClass::Sys,
        ]
        .iter()
        .map(|&c| self.fu.issued(c))
        .sum();
        if let Some(irb) = &self.irb {
            self.stats.irb = IrbSummary {
                buffer: *irb.buffer().stats(),
                reuse_passed: irb.stats().reuse_passed,
                reuse_failed: irb.stats().reuse_failed,
                lookups_port_starved: irb.stats().lookups_port_starved,
                inserts_port_starved: irb.stats().inserts_port_starved,
            };
        }
        if self.attribution {
            // IRB-less modes publish an empty (but present) record so
            // "attribution requested" always yields the section.
            self.stats.attribution = Some(Box::new(
                self.irb
                    .as_ref()
                    .and_then(|irb| irb.attribution())
                    .map(|a| a.finish(ATTRIBUTION_TOP_K))
                    .unwrap_or_default(),
            ));
        }
        self.stats.faults = *self.inj.stats();
        // Faults with no terminal event by now never corrupted an
        // architectural value: masked. (A watchdog break already
        // classified its pending faults as hangs above.)
        self.inj
            .resolve_all_pending(FaultOutcome::Masked, self.cycle);
        self.stats.fault_lifecycle = self.inj.lifecycle();
    }
}

/// Size of the hot-PC and hot-loop tables in a finalized
/// [`SimStats::attribution`](crate::SimStats) record. Sites beyond the
/// top K fold into the `folded_*` conservation buckets.
pub const ATTRIBUTION_TOP_K: usize = 8;

/// Trace stream id for an RUU stream (0 primary, 1 duplicate).
fn stream_code(s: Stream) -> u8 {
    u8::from(s == Stream::Dup)
}

/// The "reuse output domain" bits an execution of `di` produces: the
/// register result for ALU ops, the effective address for memory ops,
/// the encoded outcome for control ops, `None` for pure system ops.
fn produced_bits(di: &DynInst) -> Option<u64> {
    match di.class() {
        OpClass::Load | OpClass::Store => di.ea,
        OpClass::Branch | OpClass::Jump => di.control.map(|c| c.target | u64::from(c.taken) << 63),
        OpClass::Sys => None,
        _ => di.result,
    }
}

/// Folds store data into the comparator word (see
/// [`crate::ruu::checked_bits`]); identity for everything else.
fn finalize_out(di: &DynInst, produced: u64) -> u64 {
    if di.inst.op.is_store() {
        produced ^ di.src2.rotate_left(32)
    } else {
        produced
    }
}

#[cfg(test)]
mod tests;
