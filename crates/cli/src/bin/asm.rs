//! `redsim-asm` — assemble redsim assembly into a `.rprog` container.
//!
//! ```text
//! redsim-asm <input.s> [--out <file.rprog>] [--list]
//! ```
//!
//! `--list` prints the disassembly listing instead of writing a file.

use redsim_cli::{die, usage, Args};
use redsim_isa::{container, disasm};

fn main() {
    let args = Args::from_env();
    let Some(input) = args.positional().first() else {
        usage("usage: redsim-asm <input.s> [--out <file.rprog>] [--list]");
    };
    let src = match std::fs::read_to_string(input) {
        Ok(s) => s,
        Err(e) => die(&format!("{input}: {e}")),
    };
    let program = match redsim_isa::asm::assemble(&src) {
        Ok(p) => p,
        Err(e) => die(&format!("{input}:{e}")),
    };
    if args.has("--list") {
        print!("{}", disasm::listing(&program));
        return;
    }
    let out = args
        .value_of("--out")
        .map(str::to_owned)
        .unwrap_or_else(|| input.strip_suffix(".s").unwrap_or(input).to_owned() + ".rprog");
    if let Err(e) = std::fs::write(&out, container::to_bytes(&program)) {
        die(&format!("{out}: {e}"));
    }
    println!(
        "{out}: {} instructions, {} data bytes, entry {:#x}",
        program.text().len(),
        program.data().len(),
        program.entry()
    );
}
