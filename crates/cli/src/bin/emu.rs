//! `redsim-emu` — run a program on the functional emulator.
//!
//! ```text
//! redsim-emu <prog.s|prog.rprog> [--budget <n>] [--trace-out <file.rtrc>]
//! ```
//!
//! Prints the program's `puti`/`putc`/`putf` output and a run summary;
//! `--trace-out` additionally captures the committed trace for replay
//! with `redsim-sim --trace`.

use redsim_cli::{die, load_program, usage, Args};
use redsim_isa::emu::Emulator;
use redsim_isa::trace::OutputEvent;
use redsim_isa::trace_io;

fn main() {
    let args = Args::from_env();
    let Some(input) = args.positional().first() else {
        usage("usage: redsim-emu <prog.s|prog.rprog> [--budget <n>] [--trace-out <file.rtrc>]");
    };
    let budget = args
        .parsed_or("--budget", 200_000_000u64)
        .unwrap_or_else(|e| die(&e));
    let program = load_program(input).unwrap_or_else(|e| die(&e));
    let mut emu = Emulator::new(&program);

    let committed = if let Some(trace_path) = args.value_of("--trace-out") {
        let trace = emu
            .run_trace(budget)
            .unwrap_or_else(|e| die(&format!("execution failed: {e}")));
        let mut file = std::fs::File::create(trace_path)
            .unwrap_or_else(|e| die(&format!("{trace_path}: {e}")));
        trace_io::write_trace(&mut file, &trace)
            .unwrap_or_else(|e| die(&format!("{trace_path}: {e}")));
        println!("trace: {} records -> {trace_path}", trace.len());
        trace.len() as u64
    } else {
        emu.run(budget)
            .unwrap_or_else(|e| die(&format!("execution failed: {e}")))
    };

    for ev in emu.output() {
        match ev {
            OutputEvent::Int(v) => println!("{v}"),
            OutputEvent::Char(c) => print!("{}", *c as char),
            OutputEvent::Float(v) => println!("{v}"),
        }
    }
    eprintln!(
        "committed {committed} instructions, {} resident pages",
        emu.memory().resident_pages()
    );
}
