//! `redsim-sim` — run the cycle-level simulator.
//!
//! ```text
//! redsim-sim <prog.s|prog.rprog>            run a program
//! redsim-sim --trace <file.rtrc>            replay a captured trace
//! redsim-sim --workload <name> [--scale n]  run a built-in workload
//!
//! options:
//!   --mode sie|die|die-irb|sie-irb|die-cluster   (default: sie)
//!   --double-alus --double-ruu --double-widths   Figure-2 knobs
//!   --irb-entries <n>                            IRB capacity
//!   --forwarding shared|per-stream               §3.3 wakeup policy
//!   --fault-fu <rate> --fault-irb <rate> --fault-bus <rate> --seed <s>
//!   --attribution                                reuse-attribution breakdown
//!   --wrong-path                                 model wrong-path i-fetch
//!   --stl-forwarding                             store-to-load forwarding
//!   --compare                                    run SIE, DIE and DIE-IRB
//!   --trace-out <file.json>                      Chrome-trace event dump
//!   --metrics-out <file.jsonl>                   windowed time-series dump
//!   --metrics-prom <file.prom>                   Prometheus text exposition
//!   --metrics-window <n>                         window width in cycles (10000)
//!   --budget <n>
//! ```

use redsim_cli::{die, load_program, usage, Args};
use redsim_core::{
    EventLog, ExecMode, FaultConfig, ForwardingPolicy, Instrumentation, MachineConfig,
    MetricsCollector, MetricsSink, NullMetrics, NullTracer, SimStats, Simulator, Tracer, VecSource,
    DEFAULT_METRICS_WINDOW, REUSE_CLASS_NAMES,
};
use redsim_workloads::{Params, Workload};

fn mode_of(s: &str) -> Option<ExecMode> {
    Some(match s {
        "sie" => ExecMode::Sie,
        "die" => ExecMode::Die,
        "die-irb" => ExecMode::DieIrb,
        "sie-irb" => ExecMode::SieIrb,
        "die-cluster" => ExecMode::DieCluster,
        _ => return None,
    })
}

fn build_config(args: &Args) -> Result<MachineConfig, String> {
    let mut cfg = MachineConfig::paper_baseline();
    if args.has("--double-alus") {
        cfg = cfg.with_double_alus();
    }
    if args.has("--double-ruu") {
        cfg = cfg.with_double_ruu();
    }
    if args.has("--double-widths") {
        cfg = cfg.with_double_widths();
    }
    if let Some(n) = args.value_of("--irb-entries") {
        cfg.irb.entries = n.parse().map_err(|_| format!("bad --irb-entries `{n}`"))?;
    }
    match args.value_of("--forwarding") {
        None | Some("shared") => {}
        Some("per-stream") => cfg.forwarding = ForwardingPolicy::PerStream,
        Some(other) => return Err(format!("bad --forwarding `{other}`")),
    }
    if args.has("--wrong-path") {
        cfg.wrong_path_fetch = true;
    }
    if args.has("--stl-forwarding") {
        cfg.stl_forwarding = true;
    }
    Ok(cfg)
}

fn print_stats(mode: ExecMode, stats: &SimStats) {
    println!("mode:                {mode:?}");
    println!("instructions:        {}", stats.committed_insts);
    println!("copies committed:    {}", stats.committed_copies);
    println!("cycles:              {}", stats.cycles);
    println!("IPC:                 {:.4}", stats.ipc());
    println!(
        "branch mispredicts:  {} ({:.2}% of conditional branches)",
        stats.branches.cond_mispredicts,
        stats.branches.cond_mispredict_rate() * 100.0
    );
    println!(
        "L1D miss rate:       {:.2}%   L2 miss rate: {:.2}%",
        stats.l1d.miss_rate() * 100.0,
        stats.l2.miss_rate() * 100.0
    );
    if mode.has_irb() {
        println!(
            "IRB:                 {:.1}% pc-hit, {:.1}% reuse-pass, {} bypasses",
            stats.irb.buffer.hit_rate() * 100.0,
            stats.irb.reuse_pass_rate() * 100.0,
            stats.fu_bypasses
        );
    }
    if mode.is_dual() {
        println!(
            "pairs checked:       {} ({} mismatches)",
            stats.pairs_checked, stats.pair_mismatches
        );
    }
    if let Some(a) = &stats.attribution {
        for (name, c) in REUSE_CLASS_NAMES.iter().zip(&a.classes) {
            if c.lookups == 0 {
                continue;
            }
            println!(
                "reuse[{name:>6}]:      {} lookups, {} hits, {} passed",
                c.lookups, c.hits, c.passes
            );
        }
        for site in &a.hot_pcs {
            println!(
                "hot pc {:#010x}:   {} ({} lookups, {} hits, {} passed)",
                site.pc,
                REUSE_CLASS_NAMES[usize::from(site.class)],
                site.counters.lookups,
                site.counters.hits,
                site.counters.passes
            );
        }
        for site in &a.loops {
            println!(
                "loop @ {:#010x}:   {} lookups, {} hits, {} passed",
                site.head, site.counters.lookups, site.counters.hits, site.counters.passes
            );
        }
    }
    if stats.faults.injected_fu + stats.faults.injected_forward + stats.faults.injected_irb > 0 {
        println!(
            "faults:              {} injected, {} detected, {} escaped, {} silent",
            stats.faults.injected_fu + stats.faults.injected_forward + stats.faults.injected_irb,
            stats.faults.detected,
            stats.faults.escaped,
            stats.faults.silent_sie
        );
    }
    let st = &stats.stalls;
    println!(
        "commit activity:     {} of {} cycles productive ({:.1}%)",
        stats.active_commit_cycles,
        stats.cycles,
        if stats.cycles > 0 {
            stats.active_commit_cycles as f64 / stats.cycles as f64 * 100.0
        } else {
            0.0
        }
    );
    println!(
        "stall cycles:        frontend {}, deps {}, issue {}, fu {}, irb-port {}, exec {}, commit {}, rewind {}",
        st.frontend_empty,
        st.waiting_deps,
        st.issue_starved,
        st.fu_contention,
        st.irb_port,
        st.execution,
        st.commit_blocked,
        st.rewind
    );
}

fn main() {
    let args = Args::from_env();
    if args.has("--compare") {
        return compare(&args);
    }
    let mode = match args.value_of("--mode") {
        None => ExecMode::Sie,
        Some(m) => mode_of(m).unwrap_or_else(|| die(&format!("unknown mode `{m}`"))),
    };
    let cfg = build_config(&args).unwrap_or_else(|e| die(&e));
    let budget = args
        .parsed_or("--budget", 200_000_000u64)
        .unwrap_or_else(|e| die(&e));
    let faults = FaultConfig {
        fu_rate: args
            .parsed_or("--fault-fu", 0.0)
            .unwrap_or_else(|e| die(&e)),
        irb_rate: args
            .parsed_or("--fault-irb", 0.0)
            .unwrap_or_else(|e| die(&e)),
        forward_rate: args
            .parsed_or("--fault-bus", 0.0)
            .unwrap_or_else(|e| die(&e)),
        seed: args.parsed_or("--seed", 0u64).unwrap_or_else(|e| die(&e)),
    };
    let mut sim = Simulator::new(cfg, mode)
        .with_budget(budget)
        .try_with_faults(faults)
        .unwrap_or_else(|e| die(&format!("invalid fault configuration: {e}")));
    if args.has("--attribution") {
        sim = sim.with_attribution();
    }

    let trace_out = args.value_of("--trace-out").map(str::to_owned);
    let mut log = EventLog::new();
    let mut null = NullTracer;
    let tracer: &mut dyn Tracer = if trace_out.is_some() {
        &mut log
    } else {
        &mut null
    };

    let metrics_out = args.value_of("--metrics-out").map(str::to_owned);
    let metrics_prom = args.value_of("--metrics-prom").map(str::to_owned);
    let metrics_window = args
        .parsed_or("--metrics-window", DEFAULT_METRICS_WINDOW)
        .unwrap_or_else(|e| die(&e));
    if metrics_window == 0 {
        die("--metrics-window expects a positive cycle count, got 0");
    }
    let metrics_wanted = metrics_out.is_some() || metrics_prom.is_some();
    let mut collector = MetricsCollector::new(metrics_window);
    let mut no_metrics = NullMetrics;
    let metrics: &mut dyn MetricsSink = if metrics_wanted {
        &mut collector
    } else {
        &mut no_metrics
    };
    let instr = Instrumentation {
        tracer,
        metrics,
        profiler: None,
    };

    let stats = if let Some(trace_path) = args.value_of("--trace") {
        let file =
            std::fs::File::open(trace_path).unwrap_or_else(|e| die(&format!("{trace_path}: {e}")));
        let trace = redsim_isa::trace_io::read_trace(std::io::BufReader::new(file))
            .unwrap_or_else(|e| die(&format!("{trace_path}: {e}")));
        let mut src = VecSource::new(trace);
        sim.run_source_instrumented(&mut src, instr)
    } else if let Some(name) = args.value_of("--workload") {
        let w = Workload::from_name(name).unwrap_or_else(|| {
            die(&format!(
                "unknown workload `{name}`; try redsim-workload list"
            ))
        });
        let scale = args
            .parsed_or("--scale", w.default_params().scale)
            .unwrap_or_else(|e| die(&e));
        let seed = args
            .parsed_or("--seed", w.default_params().seed)
            .unwrap_or_else(|e| die(&e));
        let program = w
            .program(Params::new(scale, seed))
            .unwrap_or_else(|e| die(&format!("workload generation failed: {e}")));
        sim.run_program_instrumented(&program, instr)
    } else if let Some(input) = args.positional().first() {
        let program = load_program(input).unwrap_or_else(|e| die(&e));
        sim.run_program_instrumented(&program, instr)
    } else {
        usage(
            "usage: redsim-sim <prog.s|prog.rprog> | --trace <file.rtrc> | --workload <name>\n\
             run `redsim-sim --help-modes` or see the crate docs for options",
        );
    };

    match stats {
        Ok(s) => print_stats(mode, &s),
        Err(e) => die(&format!("simulation failed: {e}")),
    }

    if let Some(path) = trace_out {
        std::fs::write(&path, format!("{}\n", log.to_chrome_json()))
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        eprintln!("wrote {} trace events to {path}", log.len());
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, collector.to_jsonl())
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        eprintln!(
            "wrote {} metric windows to {path}",
            collector.samples().len()
        );
    }
    if let Some(path) = metrics_prom {
        std::fs::write(&path, collector.registry().to_prometheus())
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        eprintln!("wrote Prometheus exposition to {path}");
    }
}

/// `--compare`: run SIE, DIE and DIE-IRB over the same input and print
/// a side-by-side summary.
fn compare(args: &Args) {
    let cfg = build_config(args).unwrap_or_else(|e| die(&e));
    let budget = args
        .parsed_or("--budget", 200_000_000u64)
        .unwrap_or_else(|e| die(&e));
    let trace = if let Some(trace_path) = args.value_of("--trace") {
        let file =
            std::fs::File::open(trace_path).unwrap_or_else(|e| die(&format!("{trace_path}: {e}")));
        redsim_isa::trace_io::read_trace(std::io::BufReader::new(file))
            .unwrap_or_else(|e| die(&format!("{trace_path}: {e}")))
    } else if let Some(name) = args.value_of("--workload") {
        let w =
            Workload::from_name(name).unwrap_or_else(|| die(&format!("unknown workload `{name}`")));
        let scale = args
            .parsed_or("--scale", w.default_params().scale)
            .unwrap_or_else(|e| die(&e));
        let program = w
            .program(Params::new(scale, w.default_params().seed))
            .unwrap_or_else(|e| die(&format!("workload generation failed: {e}")));
        redsim_isa::emu::Emulator::new(&program)
            .run_trace(budget)
            .unwrap_or_else(|e| die(&format!("execution failed: {e}")))
    } else if let Some(input) = args.positional().first() {
        let program = load_program(input).unwrap_or_else(|e| die(&e));
        redsim_isa::emu::Emulator::new(&program)
            .run_trace(budget)
            .unwrap_or_else(|e| die(&format!("execution failed: {e}")))
    } else {
        die("--compare needs a program, --trace or --workload");
    };
    println!(
        "{:<8} {:>12} {:>8} {:>10}",
        "mode", "cycles", "IPC", "vs SIE"
    );
    let mut sie_ipc = 0.0;
    for mode in [ExecMode::Sie, ExecMode::Die, ExecMode::DieIrb] {
        let mut src = VecSource::new(trace.clone());
        let stats = Simulator::new(cfg.clone(), mode)
            .run_source(&mut src)
            .unwrap_or_else(|e| die(&format!("simulation failed: {e}")));
        if mode == ExecMode::Sie {
            sie_ipc = stats.ipc();
        }
        println!(
            "{:<8} {:>12} {:>8.3} {:>9.1}%",
            format!("{mode:?}"),
            stats.cycles,
            stats.ipc(),
            (stats.ipc() / sie_ipc - 1.0) * 100.0
        );
    }
}
