//! `redsim-workload` — inspect the built-in SPEC CPU2000 stand-ins.
//!
//! ```text
//! redsim-workload list                          table of workloads
//! redsim-workload emit <name> [--scale n] [--seed s]   print the assembly
//! redsim-workload mix  <name> [--scale n] [--seed s]   dynamic instruction mix
//! ```

use redsim_cli::{die, usage, Args};
use redsim_workloads::{mix::InstMix, Params, Workload};

fn params_for(w: Workload, args: &Args) -> Params {
    let d = w.default_params();
    let scale = args
        .parsed_or("--scale", d.scale)
        .unwrap_or_else(|e| die(&e));
    let seed = args.parsed_or("--seed", d.seed).unwrap_or_else(|e| die(&e));
    Params::new(scale, seed)
}

fn main() {
    let args = Args::from_env();
    match args.positional() {
        [cmd] if cmd == "list" => {
            println!(
                "{:<10} {:<6} {:>13}  models",
                "name", "suite", "default-scale"
            );
            println!("{}", "-".repeat(48));
            for w in Workload::ALL {
                println!(
                    "{:<10} {:<6} {:>13}  SPEC CPU2000 {}",
                    w.name(),
                    if w.is_fp() { "fp" } else { "int" },
                    w.default_params().scale,
                    w.name()
                );
            }
        }
        [cmd, name] if cmd == "emit" => {
            let w = Workload::from_name(name)
                .unwrap_or_else(|| die(&format!("unknown workload `{name}`")));
            print!("{}", w.source(params_for(w, &args)));
        }
        [cmd, name] if cmd == "mix" => {
            let w = Workload::from_name(name)
                .unwrap_or_else(|| die(&format!("unknown workload `{name}`")));
            let program = w
                .program(params_for(w, &args))
                .unwrap_or_else(|e| die(&format!("generation failed: {e}")));
            match InstMix::from_program(&program, 500_000_000) {
                Ok(m) => println!("{m}"),
                Err(e) => die(&format!("profiling failed: {e}")),
            }
        }
        _ => usage(
            "usage: redsim-workload list | emit <name> [--scale n] [--seed s] | mix <name> [...]",
        ),
    }
}
