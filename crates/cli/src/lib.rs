#![warn(missing_docs)]

//! # redsim-cli
//!
//! Command-line front ends for the redsim stack:
//!
//! * `redsim-asm` — assemble `.s` source into a `.rprog` container (or
//!   print a listing).
//! * `redsim-emu` — run a program functionally; print its output and,
//!   optionally, capture the committed trace to a `.rtrc` file.
//! * `redsim-sim` — run a program (or a captured trace, or a built-in
//!   workload) through the cycle-level core under any execution mode and
//!   machine configuration.
//! * `redsim-workload` — list the SPEC CPU2000 stand-ins or emit their
//!   generated assembly.
//!
//! This library hosts the small shared pieces: program loading by file
//! extension and a dependency-free argument scanner.

use std::path::Path;

use redsim_isa::asm::assemble;
use redsim_isa::container;
use redsim_isa::Program;

/// Loads a program from `.s` assembly source or a `.rprog` container,
/// keyed on the file extension (anything that is not `.rprog` is
/// treated as source).
///
/// # Errors
///
/// Returns a human-readable message on I/O, assembly or container
/// failures.
pub fn load_program(path: &str) -> Result<Program, String> {
    let is_container = Path::new(path).extension().is_some_and(|e| e == "rprog");
    if is_container {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        container::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
    } else {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        assemble(&src).map_err(|e| format!("{path}: {e}"))
    }
}

/// A minimal argument scanner: positional arguments plus `--flag` and
/// `--key value` options.
///
/// # Examples
///
/// ```
/// use redsim_cli::Args;
///
/// let a = Args::parse(["prog.s", "--budget", "500", "--stats"].map(String::from));
/// assert_eq!(a.positional(), ["prog.s"]);
/// assert_eq!(a.value_of("--budget"), Some("500"));
/// assert!(a.has("--stats"));
/// assert!(!a.has("--nope"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses an iterator of arguments (not including the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(_name) = a.strip_prefix("--") {
                // `--key value` when the next token is not another flag.
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => Some(iter.next().expect("peeked")),
                    _ => None,
                };
                out.options.push((a, value));
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// Parses the process arguments (skipping argv\[0\]).
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The positional arguments, in order.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// `true` if `flag` was given (with or without a value).
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.options.iter().any(|(k, _)| k == flag)
    }

    /// The value of `--key value`, if present.
    #[must_use]
    pub fn value_of(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Parses the value of `key` or returns `default`.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is present but unparseable.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.value_of(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {key}: `{v}`")),
        }
    }
}

/// Prints a usage message and exits with status 2.
pub fn usage(text: &str) -> ! {
    eprintln!("{text}");
    std::process::exit(2);
}

/// Exits with an error message and status 1.
pub fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn positional_and_flags_separate() {
        let a = args(&["a.s", "--list", "b.s"]);
        // `--list b.s` consumes b.s as its value in this grammar...
        assert!(a.has("--list"));
        assert_eq!(a.value_of("--list"), Some("b.s"));
        assert_eq!(a.positional(), ["a.s"]);
    }

    #[test]
    fn flag_followed_by_flag_has_no_value() {
        let a = args(&["--stats", "--budget", "100"]);
        assert!(a.has("--stats"));
        assert_eq!(a.value_of("--stats"), None);
        assert_eq!(a.value_of("--budget"), Some("100"));
    }

    #[test]
    fn parsed_or_defaults_and_errors() {
        let a = args(&["--n", "42"]);
        assert_eq!(a.parsed_or("--n", 0u64).unwrap(), 42);
        assert_eq!(a.parsed_or("--m", 7u64).unwrap(), 7);
        let b = args(&["--n", "notanumber"]);
        assert!(b.parsed_or("--n", 0u64).is_err());
    }

    #[test]
    fn load_program_dispatches_on_extension() {
        let dir = std::env::temp_dir().join("redsim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src_path = dir.join("t.s");
        std::fs::write(&src_path, "main: li a0, 1\n halt\n").unwrap();
        let p = load_program(src_path.to_str().unwrap()).unwrap();
        assert_eq!(p.text().len(), 2);
        let bin_path = dir.join("t.rprog");
        std::fs::write(&bin_path, redsim_isa::container::to_bytes(&p)).unwrap();
        let q = load_program(bin_path.to_str().unwrap()).unwrap();
        assert_eq!(p, q);
        assert!(load_program("/nonexistent/x.s").is_err());
    }
}
