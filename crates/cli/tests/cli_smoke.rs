//! End-to-end smoke tests of the command-line tools, exercising the
//! assemble -> container -> emulate -> trace -> simulate flow exactly
//! as a user would.

use std::path::PathBuf;
use std::process::Command;

fn tmpdir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("redsim-cli-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write_demo(dir: &std::path::Path) -> PathBuf {
    let p = dir.join("demo.s");
    std::fs::write(
        &p,
        "main: li s0, 100\nloop: addi s0, s0, -1\n add s1, s1, s0\n bnez s0, loop\n puti s1\n halt\n",
    )
    .unwrap();
    p
}

#[test]
fn asm_emu_sim_pipeline() {
    let dir = tmpdir();
    let src = write_demo(&dir);
    let prog = dir.join("demo.rprog");
    let trace = dir.join("demo.rtrc");

    // Assemble.
    let out = Command::new(env!("CARGO_BIN_EXE_redsim-asm"))
        .args([src.to_str().unwrap(), "--out", prog.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "asm: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(prog.exists());

    // Emulate with trace capture: sum 0..=99 = 4950.
    let out = Command::new(env!("CARGO_BIN_EXE_redsim-emu"))
        .args([
            prog.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "emu: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4950"), "emu output: {stdout}");

    // Simulate from the captured trace.
    let out = Command::new(env!("CARGO_BIN_EXE_redsim-sim"))
        .args(["--trace", trace.to_str().unwrap(), "--mode", "die-irb"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "sim: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("IPC:"), "sim output: {stdout}");
    assert!(stdout.contains("pairs checked:"), "sim output: {stdout}");
}

#[test]
fn asm_listing_mode() {
    let dir = tmpdir();
    let src = write_demo(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_redsim-asm"))
        .args([src.to_str().unwrap(), "--list"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bne s0, zero, loop"), "{stdout}");
}

#[test]
fn sim_runs_builtin_workloads() {
    let out = Command::new(env!("CARGO_BIN_EXE_redsim-sim"))
        .args(["--workload", "vortex", "--scale", "1", "--mode", "die"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mode:                Die"), "{stdout}");
}

#[test]
fn workload_list_and_emit() {
    let out = Command::new(env!("CARGO_BIN_EXE_redsim-workload"))
        .arg("list")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["gzip", "ammp", "mcf"] {
        assert!(stdout.contains(name), "{stdout}");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_redsim-workload"))
        .args(["emit", "parser", "--scale", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("wordcmp"));
}

#[test]
fn errors_are_clean_not_panics() {
    let out = Command::new(env!("CARGO_BIN_EXE_redsim-sim"))
        .args(["--workload", "nonesuch"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown workload"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    let out = Command::new(env!("CARGO_BIN_EXE_redsim-asm"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "usage exit code");
}

#[test]
fn compare_mode_prints_all_three() {
    let out = Command::new(env!("CARGO_BIN_EXE_redsim-sim"))
        .args(["--compare", "--workload", "gzip", "--scale", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["Sie", "Die", "DieIrb", "vs SIE"] {
        assert!(stdout.contains(needle), "{stdout}");
    }
}

#[test]
fn fidelity_flags_are_accepted() {
    let dir = tmpdir();
    let src = write_demo(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_redsim-sim"))
        .args([
            src.to_str().unwrap(),
            "--mode",
            "die-cluster",
            "--wrong-path",
            "--stl-forwarding",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("DieCluster"));
}
