#![warn(missing_docs)]

//! # redsim
//!
//! Meta-crate for the redsim temporal-redundancy simulation stack: a
//! from-scratch reproduction of *A Complexity-Effective Approach to ALU
//! Bandwidth Enhancement for Instruction-Level Temporal Redundancy*
//! (Parashar, Gurumurthi & Sivasubramaniam, ISCA 2004).
//!
//! This crate re-exports the public APIs of the component crates so
//! examples and downstream users can depend on a single package:
//!
//! * [`isa`] — instruction set, assembler and functional emulator.
//! * [`mem`] — cache and memory-hierarchy timing models.
//! * [`predictor`] — branch predictors, BTB and return-address stack.
//! * [`irb`] — the instruction reuse buffer.
//! * [`core`] — the cycle-level out-of-order core with SIE, DIE and
//!   DIE-IRB execution modes.
//! * [`workloads`] — the twelve SPEC CPU2000 stand-in kernels.
//!
//! # Examples
//!
//! Measure the IPC cost of dual-instruction execution on one workload and
//! recover part of it with the instruction reuse buffer:
//!
//! ```
//! use redsim::core::{ExecMode, MachineConfig, Simulator};
//! use redsim::workloads::Workload;
//!
//! let program = Workload::Gzip.program(Workload::Gzip.tiny_params()).unwrap();
//! let cfg = MachineConfig::paper_baseline();
//! let sie = Simulator::new(cfg.clone(), ExecMode::Sie).run_program(&program).unwrap();
//! let die = Simulator::new(cfg.clone(), ExecMode::Die).run_program(&program).unwrap();
//! let die_irb = Simulator::new(cfg, ExecMode::DieIrb).run_program(&program).unwrap();
//! assert!(die.ipc() < sie.ipc());
//! assert!(die_irb.ipc() >= die.ipc());
//! ```

pub use redsim_core as core;
pub use redsim_irb as irb;
pub use redsim_isa as isa;
pub use redsim_mem as mem;
pub use redsim_predictor as predictor;
pub use redsim_workloads as workloads;
