#!/usr/bin/env bash
# Full offline verification: formatting, lints, release build, the test
# suite, and one end-to-end figure smoke. Run from anywhere; no network
# access is needed (the workspace has zero external dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo build --offline --release --workspace
run cargo test --offline --workspace -q

# One figure end-to-end: quick JSON run, and the parallel sweep must be
# byte-identical to the serial one.
echo "==> fig_recovery --quick --json determinism check"
bin=target/release/fig_recovery
one=$("$bin" --quick --json --threads 1)
many=$("$bin" --quick --json --threads 8)
if [ "$one" != "$many" ]; then
    echo "FAIL: --threads 8 output differs from --threads 1" >&2
    exit 1
fi
case "$one" in
    '{"title":'*) ;;
    *) echo "FAIL: --json output is not a JSON object: $one" >&2; exit 1 ;;
esac

echo "OK: all checks passed"
