#!/usr/bin/env bash
# Full offline verification: formatting, lints, release build, the test
# suite, an end-to-end figure smoke, and a bench smoke that exercises
# the perf-baseline writer. Run from anywhere; no network access is
# needed (the workspace has zero external dependencies).
#
#   scripts/verify.sh               # everything
#   scripts/verify.sh bench-smoke   # only the bench + determinism smoke
#                                   # (assumes a release build exists)
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# Wall-clock throughput ("perf") fields vary run to run by design;
# strip them before any byte-identical comparison.
strip_perf() {
    sed -E 's/,"perf":\{[^{}]*\}//'
}

figure_smoke() {
    # One figure end-to-end: quick JSON run, and the parallel sweep must
    # be byte-identical to the serial one (modulo the perf field).
    echo "==> fig_recovery --quick --json determinism check"
    local bin=target/release/fig_recovery
    local one many
    one=$("$bin" --quick --json --threads 1)
    many=$("$bin" --quick --json --threads 8)
    if [ "$(strip_perf <<<"$one")" != "$(strip_perf <<<"$many")" ]; then
        echo "FAIL: --threads 8 output differs from --threads 1" >&2
        exit 1
    fi
    case "$one" in
        '{"title":'*'"perf":{"wall_seconds":'*) ;;
        *) echo "FAIL: --json output shape is wrong: $one" >&2; exit 1 ;;
    esac
}

bench_smoke() {
    # The simulator bench in quick mode: cheap, but it runs every case
    # and the summary writer. The summary must be a well-formed record
    # of the event-driven vs scan-baseline comparison.
    # Cargo runs the bench binary from the package directory, so hand it
    # an absolute output path.
    local out="$PWD/target/BENCH_simulator.quick.json"
    run cargo bench --offline -p redsim-bench --bench simulator -- \
        --quick --out "$out"
    case "$(cat "$out")" in
        '{"bench":"simulator","quick":true,'*'"geomean_speedup_vs_scan":'*'"cases":['*) ;;
        *) echo "FAIL: $out is not a well-formed bench summary" >&2; exit 1 ;;
    esac

    # Simulated stats must stay byte-identical to the committed
    # quick-mode goldens — the scheduling rewrite is a host-side
    # optimization, never a model change.
    echo "==> quick-mode figure goldens"
    local fig
    for fig in results/quick/*.json; do
        local name
        name=$(basename "$fig" .json)
        if ! "target/release/$name" --quick --json --threads 1 \
                | strip_perf | cmp -s - "$fig"; then
            echo "FAIL: $name --quick --json differs from committed $fig" >&2
            exit 1
        fi
    done

    # The regression gate itself: a summary diffed against itself is
    # clean (exit 0), and a synthetic +10% slowdown must trip the
    # default 5% geomean threshold (exit 1). The self-diff report —
    # including the per-phase host profile — is kept as a file so CI
    # can publish it as an artifact.
    echo "==> redsim-bench diff regression-gate smoke"
    local diff_bin=target/release/redsim-bench
    local slow="$PWD/target/BENCH_simulator.quick.slow.json"
    local report="$PWD/target/BENCH_diff_report.txt"
    echo "==> $diff_bin diff (report: $report)"
    "$diff_bin" diff "$out" "$out" --phases | tee "$report"
    run "$diff_bin" perturb "$out" "$slow" --factor 1.10
    local rc=0
    "$diff_bin" diff "$out" "$slow" || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "FAIL: a +10% perturbation must exit 1, got $rc" >&2
        exit 1
    fi
}

metrics_smoke() {
    # The windowed-metrics path end-to-end: a quick DIE-IRB run with
    # --metrics-out/--metrics-prom must produce a JSONL series whose
    # windows tile the run and a Prometheus exposition of the registry.
    echo "==> redsim-sim --metrics-out windowed time-series smoke"
    local out=target/metrics-smoke.jsonl
    local prom=target/metrics-smoke.prom
    run target/release/redsim-sim --workload gzip --scale 1 \
        --mode die-irb --metrics-window 1000 \
        --metrics-out "$out" --metrics-prom "$prom" >/dev/null
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$out" <<'EOF'
import json, sys
windows = [json.loads(l) for l in open(sys.argv[1])]
assert windows, "metrics dump has no windows"
edge = 0
for i, w in enumerate(windows):
    assert w["window"] == i, f"window {i} has index {w['window']}"
    assert w["start_cycle"] == edge, f"window {i} leaves a gap"
    assert w["end_cycle"] > w["start_cycle"], f"window {i} is empty"
    edge = w["end_cycle"]
assert any(w["irb"]["lookups"] > 0 for w in windows), "DIE-IRB run never touched the IRB"
assert all("milli_ipc" in w and "stalls" in w for w in windows)
EOF
    else
        grep -q '"window":0,' "$out" || {
            echo "FAIL: $out is missing window 0" >&2; exit 1; }
    fi
    grep -q '^# HELP redsim_cycles_total ' "$prom" || {
        echo "FAIL: $prom is not a Prometheus exposition" >&2; exit 1; }
    grep -q '^redsim_window_milli_ipc_count ' "$prom" || {
        echo "FAIL: $prom is missing the IPC histogram" >&2; exit 1; }
}

trace_smoke() {
    # The observability layer end-to-end: a quick DIE-IRB workload run
    # with --trace-out must produce parseable Chrome-trace JSON carrying
    # the expected pipeline and IRB event names.
    echo "==> redsim-sim --trace-out chrome-trace smoke"
    local out=target/trace-smoke.trace.json
    run target/release/redsim-sim --workload gzip --scale 1 \
        --mode die-irb --trace-out "$out" >/dev/null
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "trace has no events"
names = {e["name"] for e in events}
expected = {"fetch", "dispatch", "issue", "execute", "writeback",
            "commit", "irb_lookup", "irb_hit", "irb_insert"}
missing = expected - names
assert not missing, f"missing event names: {sorted(missing)}"
phases = {e["ph"] for e in events}
assert "X" in phases and "i" in phases, f"unexpected phase set: {phases}"
assert doc["metadata"]["tool"] == "redsim"
EOF
    else
        # Fallback: structural grep when python3 is unavailable.
        local name
        for name in fetch dispatch issue execute writeback commit \
                irb_lookup irb_hit irb_insert; do
            if ! grep -q "\"name\":\"$name\"" "$out"; then
                echo "FAIL: trace is missing \"$name\" events" >&2
                exit 1
            fi
        done
    fi
}

campaign_smoke() {
    # The resumable fault-injection campaign end-to-end: a full tiny
    # run, then the same campaign interrupted partway (exit code 3) and
    # resumed with a different thread count. The two final reports must
    # be byte-identical — the checkpoint/resume machinery may never
    # change a result.
    echo "==> fig_coverage campaign interrupt/resume determinism check"
    local bin=target/release/fig_coverage
    local dir=target/campaign-smoke
    rm -rf "$dir"
    mkdir -p "$dir"
    run "$bin" --quick --json --threads 4 --out "$dir/full" >/dev/null

    local rc=0
    "$bin" --quick --json --threads 1 --interrupt-after 5 \
        --out "$dir/split" >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 3 ]; then
        echo "FAIL: interrupted campaign must exit with code 3, got $rc" >&2
        exit 1
    fi
    if [ -e "$dir/split.report.json" ]; then
        echo "FAIL: an interrupted campaign must not write a report" >&2
        exit 1
    fi
    run "$bin" --quick --json --threads 8 --resume --out "$dir/split" >/dev/null

    if ! cmp -s "$dir/full.report.json" "$dir/split.report.json"; then
        echo "FAIL: resumed campaign report differs from the uninterrupted one" >&2
        exit 1
    fi
}

chaos_smoke() {
    # The chaos-recovery guarantee end-to-end: a campaign run under an
    # injected host-fault schedule (EINTR, short and torn writes,
    # ENOSPC, fsync failures, a hard kill) must degrade to exit code 5
    # with a resumable manifest, and --resume must converge to the
    # byte-identical report of a clean run.
    echo "==> fig_coverage chaos-recovery determinism check"
    local bin=target/release/fig_coverage
    local dir=target/chaos-smoke
    rm -rf "$dir"
    mkdir -p "$dir"
    run "$bin" --quick --json --threads 4 --out "$dir/clean" >/dev/null

    # A hard kill at an early IO boundary: graceful IO degradation is
    # exit code 5, and no report may exist yet.
    local rc=0
    "$bin" --quick --json --threads 2 --chaos-seed 1 --chaos-rate 0 \
        --chaos-kill-after 6 --out "$dir/chaos" >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 5 ]; then
        echo "FAIL: a chaos kill must exit with code 5, got $rc" >&2
        exit 1
    fi
    if [ -e "$dir/chaos.report.json" ]; then
        echo "FAIL: a killed campaign must not leave a report" >&2
        exit 1
    fi

    # Resume under fresh random fault schedules (every family at once)
    # until a round survives; each failing round must still exit 5, and
    # the surviving round's report must match the clean run.
    local i=0
    while :; do
        rc=0
        "$bin" --quick --json --resume --threads $((1 + i % 4)) \
            --chaos-seed $((100 + i)) --chaos-rate 0.05 \
            --out "$dir/chaos" >/dev/null 2>&1 || rc=$?
        [ "$rc" -eq 0 ] && break
        if [ "$rc" -ne 5 ]; then
            echo "FAIL: chaos round $i exited $rc (want 0 or 5)" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -ge 30 ]; then
            echo "FAIL: chaos campaign never converged in 30 rounds" >&2
            exit 1
        fi
    done
    echo "==> chaos campaign converged after $i faulted round(s)"
    if ! cmp -s "$dir/clean.report.json" "$dir/chaos.report.json"; then
        echo "FAIL: chaos-recovered report differs from the clean one" >&2
        exit 1
    fi
}

serve_smoke() {
    # The simulation-as-a-service daemon end-to-end with the real
    # binary: submit over TCP, scrape /metrics, `kill -9` the daemon,
    # restart it on the same state directory, and require the replayed
    # submission to be answered from the journal ("cached":true) with
    # no re-assembly or re-emulation. The server log is kept as a file
    # so CI can publish it as an artifact on failure.
    echo "==> redsim-serve kill -9 / restart / cache smoke"
    local bin=target/release/redsim-serve
    local dir=target/serve-smoke
    local log="$dir/server.log"
    rm -rf "$dir"
    mkdir -p "$dir"

    start_daemon() {
        "$bin" serve --state-dir "$dir" --workers 2 >>"$log" 2>&1 &
        serve_pid=$!
        # The daemon writes `<state-dir>/endpoint` once it is listening.
        local i=0
        until [ -s "$dir/endpoint" ]; do
            if ! kill -0 "$serve_pid" 2>/dev/null; then
                echo "FAIL: redsim-serve died during startup" >&2
                cat "$log" >&2
                exit 1
            fi
            i=$((i + 1))
            if [ "$i" -ge 200 ]; then
                echo "FAIL: redsim-serve never announced an endpoint" >&2
                cat "$log" >&2
                exit 1
            fi
            sleep 0.05
        done
    }

    start_daemon
    local first second
    first=$("$bin" submit --state-dir "$dir" --workload gzip \
        --mode die-irb --wait | tail -1)
    case "$first" in
        '{"ok":true,'*'"cycles":'*) ;;
        *) echo "FAIL: first submission did not succeed: $first" >&2
           cat "$log" >&2; exit 1 ;;
    esac
    "$bin" metrics --state-dir "$dir" | grep -q \
        '^serve_trace_cache_builds_total 1$' || {
        echo "FAIL: the first job must build exactly one trace" >&2
        cat "$log" >&2; exit 1
    }

    # Hard-kill the daemon and restart it on the same state directory.
    kill -9 "$serve_pid"
    wait "$serve_pid" 2>/dev/null || true
    rm -f "$dir/endpoint"
    start_daemon

    # A replayed submission is answered from the journal: same result,
    # no new trace build, and the ack says "cached".
    second=$("$bin" submit --state-dir "$dir" --workload gzip \
        --mode die-irb --wait)
    case "$second" in
        *'"cached":true'*) ;;
        *) echo "FAIL: replay after restart was not served from the journal: $second" >&2
           cat "$log" >&2; exit 1 ;;
    esac
    if [ "$(tail -1 <<<"$second")" != "$first" ]; then
        echo "FAIL: replayed result differs from the original" >&2
        echo "  first:  $first" >&2
        echo "  second: $(tail -1 <<<"$second")" >&2
        cat "$log" >&2
        exit 1
    fi
    "$bin" metrics --state-dir "$dir" | grep -q \
        '^serve_trace_cache_builds_total 0$' || {
        echo "FAIL: the restarted daemon re-built a cached trace" >&2
        cat "$log" >&2; exit 1
    }

    run "$bin" shutdown --state-dir "$dir"
    wait "$serve_pid" 2>/dev/null || true
}

attribution_smoke() {
    # The reuse-attribution telemetry end-to-end: the fig_reuse_anatomy
    # sweep (all five modes, both engines, attribution on) must satisfy
    # the conservation contract — per-class lookup/hit/pass counters sum
    # exactly to the aggregate IrbSummary totals, and the hot-PC and
    # loop decompositions cover the same events — byte-identically at
    # any thread count. Then the serve daemon's HTTP observability API
    # is scraped: /jobs, /jobs/<id>/attribution, /metrics (uptime and
    # request-type counters), plus the 404 surface. The sweep JSON is
    # kept as a file so CI can publish it as an artifact on failure.
    echo "==> fig_reuse_anatomy conservation + serve attribution API smoke"
    local bin=target/release/fig_reuse_anatomy
    local out="$PWD/target/attribution-smoke.json"
    "$bin" --quick --json --threads 1 >"$out"
    local many
    many=$("$bin" --quick --json --threads 4)
    if [ "$(strip_perf <"$out")" != "$(strip_perf <<<"$many")" ]; then
        echo "FAIL: fig_reuse_anatomy --threads 4 differs from --threads 1" >&2
        exit 1
    fi
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
anatomy = doc["anatomy"]
assert anatomy, "no anatomy entries"
KEYS = ("lookups", "hits", "passes", "fails")
by_cell = {}
for e in anatomy:
    tag = (e["workload"], e["mode"], e["engine"])
    a, irb = e["attribution"], e["irb"]
    cls = a["classes"]
    assert set(cls) == {"alu", "mul", "div", "mem", "branch"}, tag
    tot = {k: sum(c[k] for c in cls.values()) for k in KEYS}
    assert tot["lookups"] == irb["lookups"], tag
    assert tot["hits"] == irb["hits"], tag
    assert tot["passes"] == irb["reuse_passed"], tag
    assert tot["fails"] == irb["reuse_failed"], tag
    pc = {k: sum(p[k] for p in a["hot_pcs"]) + a["folded_pcs"][k] for k in KEYS}
    assert pc == tot, f"{tag}: hot-PC decomposition diverges"
    lp = {k: sum(l[k] for l in a["loops"]) + a["folded_loops"][k] + a["outside"][k]
          for k in KEYS}
    assert lp == tot, f"{tag}: loop decomposition diverges"
    if e["mode"] not in ("SieIrb", "DieIrb"):
        assert tot["lookups"] == 0, f"{tag}: an IRB-less mode attributed lookups"
    by_cell.setdefault(tag[:2], {})[e["engine"]] = json.dumps(a, sort_keys=True)
for cell, by_engine in by_cell.items():
    assert by_engine["event"] == by_engine["scan"], f"{cell}: engines diverge"
print(f"attribution conservation OK: {len(anatomy)} jobs, {len(by_cell)} cells")
EOF
    else
        grep -q '"anatomy":\[' "$out" || {
            echo "FAIL: $out has no anatomy section" >&2; exit 1; }
    fi

    # The serve daemon's observability API over real HTTP.
    local serve=target/release/redsim-serve
    local dir=target/attribution-serve-smoke
    local log="$dir/server.log"
    rm -rf "$dir"
    mkdir -p "$dir"
    "$serve" serve --state-dir "$dir" --workers 2 >>"$log" 2>&1 &
    local serve_pid=$!
    local i=0
    until [ -s "$dir/endpoint" ]; do
        if ! kill -0 "$serve_pid" 2>/dev/null; then
            echo "FAIL: redsim-serve died during startup" >&2
            cat "$log" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -ge 200 ]; then
            echo "FAIL: redsim-serve never announced an endpoint" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.05
    done
    local ack
    ack=$("$serve" submit --state-dir "$dir" --workload gzip \
        --mode die-irb --attribution --wait)
    ack=$(head -1 <<<"$ack")
    case "$ack" in
        '{"ok":true,"id":'*) ;;
        *) echo "FAIL: attribution submission was refused: $ack" >&2
           cat "$log" >&2; exit 1 ;;
    esac
    local jid
    jid=$(sed -E 's/.*"id":([0-9]+).*/\1/' <<<"$ack")
    local addr
    addr=$(sed -n 's/^tcp //p' "$dir/endpoint")
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$addr" "$jid" <<'EOF' || { cat target/attribution-serve-smoke/server.log >&2; exit 1; }
import json, socket, sys
addr, jid = sys.argv[1].strip(), sys.argv[2]
host, port = addr.rsplit(":", 1)
def get(path):
    s = socket.create_connection((host, int(port)), timeout=30)
    s.sendall(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
    data = b""
    while True:
        chunk = s.recv(65536)
        if not chunk:
            break
        data += chunk
    s.close()
    head, _, body = data.decode().partition("\r\n\r\n")
    return head.split("\r\n")[0], body
status, body = get(f"/jobs/{jid}")
assert "200" in status, (status, body)
payload = json.loads(body)
assert payload["ok"] is True and "attribution" in payload, body
status, body = get(f"/jobs/{jid}/attribution")
assert "200" in status, (status, body)
attr = json.loads(body)
assert set(attr["classes"]) == {"alu", "mul", "div", "mem", "branch"}, body
assert attr == payload["attribution"], "attribution route must serve the stored section"
status, body = get("/jobs")
assert "200" in status, (status, body)
listing = json.loads(body)
assert any(e["id"] == int(jid) and e["state"] == "done" for e in listing), body
status, body = get("/metrics")
assert "200" in status, (status, body)
assert "redsim_serve_uptime_seconds" in body, body
assert "serve_requests_http_total" in body, body
assert "serve_requests_submit_total 1" in body, body
status, body = get("/nope")
assert "404" in status, (status, body)
print("serve attribution endpoints OK")
EOF
    else
        echo "==> python3 unavailable; skipping the HTTP endpoint scrape"
    fi
    run "$serve" shutdown --state-dir "$dir"
    wait "$serve_pid" 2>/dev/null || true
}

if [ "${1:-}" = "serve-smoke" ]; then
    serve_smoke
    echo "OK: serve smoke passed"
    exit 0
fi

if [ "${1:-}" = "attribution-smoke" ]; then
    attribution_smoke
    echo "OK: attribution smoke passed"
    exit 0
fi

if [ "${1:-}" = "bench-smoke" ]; then
    bench_smoke
    echo "OK: bench smoke passed"
    exit 0
fi

if [ "${1:-}" = "campaign-smoke" ]; then
    campaign_smoke
    echo "OK: campaign smoke passed"
    exit 0
fi

if [ "${1:-}" = "chaos-smoke" ]; then
    chaos_smoke
    echo "OK: chaos smoke passed"
    exit 0
fi

if [ "${1:-}" = "trace-smoke" ]; then
    trace_smoke
    echo "OK: trace smoke passed"
    exit 0
fi

if [ "${1:-}" = "metrics-smoke" ]; then
    metrics_smoke
    echo "OK: metrics smoke passed"
    exit 0
fi

run cargo fmt --all -- --check
run cargo clippy --offline --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps
run cargo build --offline --release --workspace
run cargo test --offline --workspace -q
figure_smoke
trace_smoke
metrics_smoke
campaign_smoke
chaos_smoke
serve_smoke
attribution_smoke
bench_smoke

echo "OK: all checks passed"
